// Cross-semantics differential & property harness — the pin holding
// the pluggable RepairSemantics layer together.
//
// 520 seeded adversarial tables (RandomFDTable shapes crossed with
// four FD-set layouts: single FD, multi-rhs FD, a shared-lhs multi-FD
// component, and two independent components) are repaired under every
// registered semantics and checked against the properties that define
// them:
//
//   1. cardinality never changes more cells than ft-cost does under
//      the same classical detection (it is the min-change semantics);
//   2. soft-fd with every confidence at 1 is byte-for-byte
//      decision-identical to ft-cost (infinite penalty rate == the
//      filter never fires);
//   3. the soft-fd filter only ever *reverts* repairs: cost and cells
//      changed are monotonically <= the ft-cost run, and the hard
//      (confidence 1) FDs stay consistent;
//   4. every mode's output satisfies its own consistency predicate
//      (RepairSemantics::CountResidualViolations == 0);
//   5. explain reports replay through VerifyExplainReport under every
//      semantics — including cardinality, whose verifier must rebuild
//      the indicator-metric distance model from the report.
//
// Runs that degraded or hit an empty target join are skipped where a
// property only holds for complete repairs; vacuity guards assert the
// harness actually exercised violating tables and non-skipped runs.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/strings.h"
#include "constraint/fd.h"
#include "core/repairer.h"
#include "core/semantics.h"
#include "data/csv.h"
#include "eval/explain_verify.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::RandomFDTable;

constexpr uint64_t kNumScenarios = 520;

/// One adversarial instance: a seeded dirty table plus its FD set.
struct Scenario {
  uint64_t seed = 0;
  Table table;
  std::vector<FD> fds;
};

/// Deterministic scenario family. The table shape, error density and
/// FD layout all derive from the seed, so every test in this file
/// walks the same 520 instances.
Scenario MakeScenario(uint64_t seed) {
  const int num_cols = 2 + static_cast<int>(seed % 3);
  const int num_rows = 16 + static_cast<int>(seed % 45);
  const int num_keys = 2 + static_cast<int>(seed % 5);
  const int num_flips = static_cast<int>(seed % 12);

  Scenario s;
  s.seed = seed;
  s.table =
      RandomFDTable(num_rows, num_cols, num_keys, num_flips, seed * 1000 + 17);

  auto fd = [](std::vector<int> lhs, std::vector<int> rhs, std::string name) {
    return std::move(FD::Make(std::move(lhs), std::move(rhs), std::move(name)))
        .ValueOrDie();
  };
  switch (seed % 4) {
    case 1:
      if (num_cols >= 3) {  // one FD, two rhs columns
        s.fds.push_back(fd({0}, {1, 2}, "phi0"));
        break;
      }
      [[fallthrough]];
    case 2:
      if (num_cols >= 3) {  // shared-lhs multi-FD component
        s.fds.push_back(fd({0}, {1}, "phi0"));
        s.fds.push_back(fd({0}, {2}, "phi1"));
        break;
      }
      [[fallthrough]];
    case 3:
      if (num_cols >= 4) {  // two independent components
        s.fds.push_back(fd({0}, {1}, "phi0"));
        s.fds.push_back(fd({2}, {3}, "phi1"));
        break;
      }
      [[fallthrough]];
    default:
      s.fds.push_back(fd({0}, {1}, "phi0"));
      break;
  }
  return s;
}

/// Classical-FD detection settings: the only configuration where
/// ft-cost and cardinality see the identical violation set, making
/// their change counts comparable.
RepairOptions ClassicalOptions(uint64_t seed) {
  RepairOptions options;
  options.w_l = 1.0;
  options.w_r = 0.0;
  options.default_tau = 0.0;
  options.algorithm = RepairAlgorithm::kExact;
  options.threads = (seed % 2 == 0) ? 1 : 4;
  return options;
}

/// A "natural" ft configuration (positive tau, split weights, the
/// algorithm family cycling with the seed) for the soft-fd
/// differentials, which hold at any settings.
RepairOptions NaturalOptions(uint64_t seed) {
  RepairOptions options;
  options.default_tau = (seed % 2 == 0) ? 0.2 : 0.4;
  switch (seed % 3) {
    case 0:
      options.algorithm = RepairAlgorithm::kExact;
      break;
    case 1:
      options.algorithm = RepairAlgorithm::kGreedy;
      break;
    default:
      options.algorithm = RepairAlgorithm::kApproJoin;
      break;
  }
  options.threads = (seed % 4 == 3) ? 4 : 1;
  return options;
}

RepairResult RunRepair(const Scenario& s, const RepairOptions& options) {
  auto result = Repairer(options).Repair(s.table, s.fds);
  EXPECT_TRUE(result.ok()) << "seed " << s.seed << ": "
                           << result.status().ToString();
  return result.ok() ? std::move(result).value() : RepairResult{};
}

uint64_t Residual(const std::string& semantics, const Table& repaired,
                  const Scenario& s, const RepairOptions& options) {
  const RepairSemantics* impl = SemanticsRegistry::Instance().Find(semantics);
  EXPECT_NE(impl, nullptr) << semantics;
  return impl == nullptr
             ? ~0ULL
             : impl->CountResidualViolations(repaired, s.fds, options);
}

/// Byte-level fingerprint of everything a repair produced (the
/// semantics_golden_test format: equal fingerprints == the two runs
/// made the same decisions everywhere).
std::string Fingerprint(const RepairResult& result) {
  std::string fp = WriteCsvString(result.repaired);
  fp += "|changes:";
  for (const CellChange& c : result.changes) {
    fp += std::to_string(c.row) + "," + std::to_string(c.col) + ":" +
          c.old_value.ToString() + "->" + c.new_value.ToString() + ";";
  }
  fp += "|cost:" + FormatDouble(result.stats.repair_cost);
  fp += "|cells:" + std::to_string(result.stats.cells_changed);
  fp += "|tuples:" + std::to_string(result.stats.tuples_changed);
  fp += "|before:" + std::to_string(result.stats.ft_violations_before);
  fp += "|after:" + std::to_string(result.stats.ft_violations_after);
  return fp;
}

bool Complete(const RepairResult& result) {
  return !result.stats.degraded() && !result.stats.join_empty;
}

// Property 1 + 4 (ft-cost, cardinality): under identical classical
// detection, both semantics repair over the same feasible target
// space, so the min-change optimum can never change more cells than
// the min-cost optimum; and each output must satisfy its own
// consistency predicate.
TEST(SemanticsPropertyTest, CardinalityNeverChangesMoreCellsThanFtCost) {
  uint64_t compared = 0;
  uint64_t skipped = 0;
  uint64_t had_violations = 0;
  for (uint64_t seed = 1; seed <= kNumScenarios; ++seed) {
    const Scenario s = MakeScenario(seed);

    RepairOptions ft_options = ClassicalOptions(seed);
    ft_options.semantics = "ft-cost";
    const RepairResult ft = RunRepair(s, ft_options);

    RepairOptions card_options = ClassicalOptions(seed);
    card_options.semantics = "cardinality";
    const RepairResult card = RunRepair(s, card_options);
    if (HasFatalFailure()) return;

    if (ft.stats.ft_violations_before > 0) ++had_violations;

    // The comparison (and the consistency predicates) only bind when
    // both runs completed their requested rung without truncation.
    if (!Complete(ft) || !Complete(card)) {
      ++skipped;
      continue;
    }
    ++compared;

    EXPECT_LE(card.stats.cells_changed, ft.stats.cells_changed)
        << "seed " << seed
        << ": cardinality changed more cells than ft-cost";

    EXPECT_EQ(Residual("cardinality", card.repaired, s, card_options), 0u)
        << "seed " << seed << ": cardinality output not exact-FD consistent";
    EXPECT_EQ(Residual("ft-cost", ft.repaired, s, ft_options),
              ft.stats.ft_violations_after)
        << "seed " << seed
        << ": registry predicate disagrees with the pipeline's own count";
    EXPECT_EQ(Residual("ft-cost", ft.repaired, s, ft_options), 0u)
        << "seed " << seed << ": ft-cost output not FT-consistent";
  }
  // Vacuity guards: the harness must have exercised real violations
  // and actually compared most runs.
  EXPECT_GE(had_violations, kNumScenarios / 4);
  EXPECT_GE(compared, kNumScenarios / 2) << "skipped " << skipped;
}

// Property 2: confidence 1 == infinite penalty rate == the revert
// filter can never fire, so soft-fd must reproduce the ft-cost run
// byte for byte — table, change list, cost and stats counters.
TEST(SemanticsPropertyTest, SoftFdAtFullConfidenceIsDecisionIdentical) {
  for (uint64_t seed = 1; seed <= kNumScenarios; ++seed) {
    const Scenario s = MakeScenario(seed);

    RepairOptions ft_options = NaturalOptions(seed);
    ft_options.semantics = "ft-cost";
    const RepairResult ft = RunRepair(s, ft_options);

    RepairOptions soft_options = NaturalOptions(seed);
    soft_options.semantics = "soft-fd";  // every FD keeps confidence 1
    const RepairResult soft = RunRepair(s, soft_options);
    if (HasFatalFailure()) return;

    ASSERT_EQ(Fingerprint(soft), Fingerprint(ft))
        << "seed " << seed
        << ": soft-fd at confidence 1 diverged from ft-cost";
  }
}

// Property 3 + 4 (soft-fd): the penalty filter only reverts repairs,
// so against the same-options ft-cost run the soft run's cost and
// changed-cell count are monotonically <=; and the hard FDs (the ones
// the predicate counts) stay consistent whenever the run completed.
TEST(SemanticsPropertyTest, SoftFdFilterOnlyRevertsRepairs) {
  uint64_t reverted_somewhere = 0;
  for (uint64_t seed = 1; seed <= kNumScenarios; ++seed) {
    const Scenario s = MakeScenario(seed);

    // Classical detection keeps the violation graphs sparse (per-key
    // cliques), so a low-confidence FD's penalty can actually fall
    // below the repair cost; under a dense tau>0 graph every pattern
    // has so many violating pairs that repairs are always worth it.
    RepairOptions ft_options = ClassicalOptions(seed);
    switch (seed % 3) {
      case 0:
        ft_options.algorithm = RepairAlgorithm::kExact;
        break;
      case 1:
        ft_options.algorithm = RepairAlgorithm::kGreedy;
        break;
      default:
        ft_options.algorithm = RepairAlgorithm::kApproJoin;
        break;
    }
    ft_options.semantics = "ft-cost";
    const RepairResult ft = RunRepair(s, ft_options);

    RepairOptions soft_options = ft_options;
    soft_options.semantics = "soft-fd";
    // First FD soft with a seed-varied confidence, the rest hard. The
    // grid spans low-trust FDs (where reverting beats repairing) up to
    // near-hard ones, so both filter outcomes occur across the sweep.
    static constexpr double kConfidences[7] = {0.01, 0.03, 0.08, 0.15,
                                               0.3,  0.6,  0.9};
    soft_options.confidence_by_fd["phi0"] = kConfidences[seed % 7];
    const RepairResult soft = RunRepair(s, soft_options);
    if (HasFatalFailure()) return;

    EXPECT_LE(soft.stats.repair_cost, ft.stats.repair_cost + 1e-9)
        << "seed " << seed << ": soft-fd repaired at a higher cost";
    EXPECT_LE(soft.stats.cells_changed, ft.stats.cells_changed)
        << "seed " << seed << ": soft-fd changed more cells";
    if (soft.stats.cells_changed < ft.stats.cells_changed) {
      ++reverted_somewhere;
    }

    if (Complete(soft)) {
      EXPECT_EQ(Residual("soft-fd", soft.repaired, s, soft_options), 0u)
          << "seed " << seed << ": a hard FD is inconsistent after soft-fd";
    }
  }
  // Vacuity guard: the filter must actually have fired somewhere.
  EXPECT_GE(reverted_somewhere, 10u);
}

// Property 4, all three modes at the natural settings (the classical
// test already covers ft-cost/cardinality at tau 0): whatever a mode
// emits must satisfy that same mode's consistency predicate.
TEST(SemanticsPropertyTest, EveryModeSatisfiesItsOwnConsistencyPredicate) {
  uint64_t checked = 0;
  for (uint64_t seed = 1; seed <= kNumScenarios; seed += 4) {
    const Scenario s = MakeScenario(seed);
    for (const std::string& semantics :
         {std::string("ft-cost"), std::string("soft-fd"),
          std::string("cardinality")}) {
      RepairOptions options = NaturalOptions(seed);
      options.semantics = semantics;
      if (semantics == "soft-fd") {
        options.confidence_by_fd["phi0"] = 0.5;
      }
      const RepairResult result = RunRepair(s, options);
      if (HasFatalFailure()) return;
      if (!Complete(result)) continue;
      ++checked;
      EXPECT_EQ(Residual(semantics, result.repaired, s, options), 0u)
          << "seed " << seed << ": " << semantics
          << " output violates its own consistency predicate";
    }
  }
  EXPECT_GE(checked, kNumScenarios / 4);
}

// Property 5: explain reports replay under every semantics. The
// cardinality replays exercise the verifier's semantics-aware
// distance-model reconstruction (indicator metrics); a drifted model
// would fail every recomputed unit cost.
TEST(SemanticsPropertyTest, ExplainReplayVerifiesAcrossSemantics) {
  int replayed = 0;
  for (uint64_t seed = 1; seed <= kNumScenarios; seed += 37) {
    const Scenario s = MakeScenario(seed);
    for (const std::string& semantics :
         {std::string("ft-cost"), std::string("soft-fd"),
          std::string("cardinality")}) {
      RepairOptions options = NaturalOptions(seed);
      options.semantics = semantics;
      options.provenance = true;
      if (semantics == "soft-fd") {
        options.confidence_by_fd["phi0"] = 0.7;
      }
      const RepairResult result = RunRepair(s, options);
      if (HasFatalFailure()) return;

      const std::string json = ExplainReportJson(s.table, result);
      auto verify = VerifyExplainReport(s.table, json, 1e-6);
      ASSERT_TRUE(verify.ok()) << "seed " << seed << " " << semantics << ": "
                               << verify.status().ToString();
      EXPECT_TRUE(verify.value().errors.empty())
          << "seed " << seed << " " << semantics << ": "
          << (verify.value().errors.empty() ? ""
                                            : verify.value().errors.front());
      ++replayed;
    }
  }
  EXPECT_GE(replayed, 42);  // 14 seeds x 3 semantics
}

}  // namespace
}  // namespace ftrepair
