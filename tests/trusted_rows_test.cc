// Trusted (master-data) rows: cells of trusted rows are never modified
// and their patterns anchor every chosen independent set.

#include <gtest/gtest.h>

#include "core/repairer.h"
#include "detect/detector.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;

// A table where the *frequent* pattern is wrong and a single trusted
// row carries the correct value (one edit away on each attribute, so
// the two patterns are FT-adjacent): untrusted majority logic repairs
// toward the majority; trust must win.
Table MinorityTruthTable() {
  Table t(Schema({{"k", ValueType::kString}, {"v", ValueType::kString}}));
  for (int i = 0; i < 5; ++i) {
    (void)t.AppendRow({Value("aaaaaa"), Value("righx")});
  }
  (void)t.AppendRow({Value("aaaaab"), Value("right")});  // row 5: trusted
  return t;
}

TEST(TrustedRowsTest, TrustedPatternMaskMarksCarriers) {
  Table t = MinorityTruthTable();
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  std::vector<Pattern> patterns = BuildPatterns(t, fd.attrs());
  ASSERT_EQ(patterns.size(), 2u);
  std::vector<bool> mask = TrustedPatternMask(patterns, {5});
  EXPECT_FALSE(mask[0]);
  EXPECT_TRUE(mask[1]);
  EXPECT_EQ(TrustedPatternMask(patterns, {}),
            (std::vector<bool>{false, false}));
}

TEST(TrustedRowsTest, TrustOverridesFrequency) {
  Table t = MinorityTruthTable();
  FD fd = std::move(FD::Make({0}, {1}, "f")).ValueOrDie();
  RepairOptions options;
  options.default_tau = 0.4;
  options.trusted_rows = {5};
  for (RepairAlgorithm algorithm :
       {RepairAlgorithm::kGreedy, RepairAlgorithm::kExact}) {
    options.algorithm = algorithm;
    Repairer repairer(options);
    RepairResult result =
        std::move(repairer.Repair(t, {fd})).ValueOrDie();
    // The trusted row is untouched; the majority is pulled toward it.
    EXPECT_EQ(result.repaired.cell(5, 0), Value("aaaaab"));
    EXPECT_EQ(result.repaired.cell(5, 1), Value("right"));
    for (int r = 0; r < 5; ++r) {
      EXPECT_EQ(result.repaired.cell(r, 0), Value("aaaaab"))
          << RepairAlgorithmName(algorithm) << " row " << r;
      EXPECT_EQ(result.repaired.cell(r, 1), Value("right"));
    }
    EXPECT_EQ(result.stats.trusted_conflicts, 0u);
  }
}

TEST(TrustedRowsTest, WithoutTrustMajorityWins) {
  Table t = MinorityTruthTable();
  FD fd = std::move(FD::Make({0}, {1}, "f")).ValueOrDie();
  RepairOptions options;
  options.default_tau = 0.4;
  Repairer repairer(options);
  RepairResult result = std::move(repairer.Repair(t, {fd})).ValueOrDie();
  EXPECT_EQ(result.repaired.cell(5, 0), Value("aaaaaa"));
  EXPECT_EQ(result.repaired.cell(5, 1), Value("righx"));
}

TEST(TrustedRowsTest, TrustedCellsNeverChangeOnCitizens) {
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options;
  options.tau_by_fd = {{"phi1", 0.30}, {"phi2", 0.5}, {"phi3", 0.5}};
  // Trust t5 *as it stands* (even though Table 1 marks it dirty): the
  // repair must leave every t5 cell alone and stay FT-consistent by
  // moving other tuples instead.
  options.trusted_rows = {4};
  for (RepairAlgorithm algorithm :
       {RepairAlgorithm::kGreedy, RepairAlgorithm::kApproJoin,
        RepairAlgorithm::kExact}) {
    options.algorithm = algorithm;
    Repairer repairer(options);
    RepairResult result =
        std::move(repairer.Repair(dirty, fds)).ValueOrDie();
    for (int c = 0; c < dirty.num_columns(); ++c) {
      EXPECT_EQ(result.repaired.cell(4, c), dirty.cell(4, c))
          << RepairAlgorithmName(algorithm) << " col " << c;
    }
    for (const CellChange& change : result.changes) {
      EXPECT_NE(change.row, 4) << RepairAlgorithmName(algorithm);
    }
  }
}

TEST(TrustedRowsTest, ConflictingTrustedPatternsSurfaced) {
  // Two trusted rows with the same key but different values: the
  // thresholds flag them as an FT-violation, trust keeps both, and the
  // conflict count reports the contradiction.
  Table t(Schema({{"k", ValueType::kString}, {"v", ValueType::kString}}));
  (void)t.AppendRow({Value("aaaaaa"), Value("xx")});
  (void)t.AppendRow({Value("aaaaaa"), Value("xy")});
  FD fd = std::move(FD::Make({0}, {1}, "f")).ValueOrDie();
  RepairOptions options;
  options.default_tau = 0.4;
  options.trusted_rows = {0, 1};
  options.compute_violation_stats = false;
  Repairer repairer(options);
  RepairResult result = std::move(repairer.Repair(t, {fd})).ValueOrDie();
  EXPECT_GE(result.stats.trusted_conflicts, 1u);
  EXPECT_EQ(result.repaired.cell(0, 1), Value("xx"));
  EXPECT_EQ(result.repaired.cell(1, 1), Value("xy"));
}

TEST(IncrementalRepairTest, AppendedRowsRepairTowardPrefix) {
  // A clean prefix of 6 rows plus 2 appended dirty rows: the prefix is
  // untouched and the new rows snap to its patterns.
  Table t(Schema({{"k", ValueType::kString}, {"v", ValueType::kString}}));
  for (int i = 0; i < 3; ++i) {
    (void)t.AppendRow({Value("alpha1"), Value("one")});
    (void)t.AppendRow({Value("beta22"), Value("two")});
  }
  (void)t.AppendRow({Value("alpha1"), Value("onx")});   // RHS typo
  (void)t.AppendRow({Value("betaZ2"), Value("two")});   // LHS typo
  FD fd = std::move(FD::Make({0}, {1}, "f")).ValueOrDie();
  RepairOptions options;
  options.default_tau = 0.3;
  Repairer repairer(options);
  RepairResult result =
      std::move(repairer.RepairAppended(t, 6, {fd})).ValueOrDie();
  for (const CellChange& change : result.changes) {
    EXPECT_GE(change.row, 6);
  }
  EXPECT_EQ(result.repaired.cell(6, 1), Value("one"));
  EXPECT_EQ(result.repaired.cell(7, 0), Value("beta22"));
  EXPECT_EQ(result.stats.ft_violations_after, 0u);
}

TEST(IncrementalRepairTest, BoundaryValuesValidated) {
  Table t = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(t.schema());
  Repairer repairer;
  EXPECT_FALSE(repairer.RepairAppended(t, -1, fds).ok());
  EXPECT_FALSE(repairer.RepairAppended(t, 99, fds).ok());
  // first_new_row == num_rows: everything trusted, nothing changes.
  RepairResult result =
      std::move(repairer.RepairAppended(t, t.num_rows(), fds)).ValueOrDie();
  EXPECT_TRUE(result.changes.empty());
  // first_new_row == 0: equivalent to a full repair.
  RepairOptions options;
  options.tau_by_fd = {{"phi1", 0.30}, {"phi2", 0.5}, {"phi3", 0.5}};
  Repairer full(options);
  RepairResult incremental =
      std::move(full.RepairAppended(t, 0, fds)).ValueOrDie();
  RepairResult direct = std::move(full.Repair(t, fds)).ValueOrDie();
  EXPECT_EQ(incremental.stats.cells_changed, direct.stats.cells_changed);
}

}  // namespace
}  // namespace ftrepair
