// Budget / degradation-ladder suite: deterministic fault injection via
// FTREPAIR_FAULT_BUDGET_UNITS proves that exhausting the budget at any
// point in the pipeline yields a well-formed partial repair — never a
// crash, a hang, or an inconsistent table.

#include <cstdlib>
#include <string>
#include <tuple>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "core/repairer.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;
using testing_util::RandomFDTable;

// Scoped setenv/unsetenv so a failing assertion cannot leak the fault
// seam into later tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() { unsetenv(name_); }

 private:
  const char* name_;
};

TEST(BudgetTest, UnlimitedNeverExhausts) {
  Budget budget;
  EXPECT_FALSE(budget.limited());
  EXPECT_EQ(budget.RemainingMs(), Budget::kUnlimited);
  for (int i = 0; i < 10000; ++i) EXPECT_TRUE(budget.Charge());
  EXPECT_FALSE(budget.Exhausted());
  EXPECT_TRUE(budget.Check("test").ok());
}

TEST(BudgetTest, UnlimitedIgnoresFaultSeam) {
  ScopedEnv fault("FTREPAIR_FAULT_BUDGET_UNITS", "1");
  Budget budget;
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(budget.Charge());
  EXPECT_FALSE(budget.Exhausted());
}

TEST(BudgetTest, NonPositiveDeadlineExhaustsImmediately) {
  Budget zero(0);
  EXPECT_TRUE(zero.Exhausted());
  EXPECT_FALSE(zero.Charge());
  EXPECT_EQ(zero.RemainingMs(), 0);
  Budget negative(-5);
  EXPECT_TRUE(negative.Exhausted());
  Status status = negative.Check("somewhere");
  EXPECT_TRUE(status.IsResourceExhausted()) << status.ToString();
  EXPECT_NE(status.message().find("somewhere"), std::string::npos);
  EXPECT_NE(status.message().find("deadline"), std::string::npos);
}

TEST(BudgetTest, CancelLatchesAndNamesCause) {
  Budget budget;  // unlimited: only Cancel can exhaust it
  EXPECT_FALSE(budget.Exhausted());
  budget.Cancel();
  EXPECT_TRUE(budget.Exhausted());
  EXPECT_FALSE(budget.Charge());
  Status status = budget.Check("serving layer");
  EXPECT_TRUE(status.IsResourceExhausted());
  EXPECT_NE(status.message().find("cancelled"), std::string::npos)
      << status.ToString();
}

TEST(BudgetTest, FaultSeamTripsAtExactUnitCount) {
  ScopedEnv fault("FTREPAIR_FAULT_BUDGET_UNITS", "10");
  Budget budget(1e9);  // limited, deadline far away: only the seam trips
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(budget.Charge()) << "unit " << i;
  }
  EXPECT_FALSE(budget.Charge());  // the 10th unit trips
  EXPECT_TRUE(budget.Exhausted());
  EXPECT_EQ(budget.units_charged(), 10u);
  Status status = budget.Check("loop");
  EXPECT_NE(status.message().find("injected fault"), std::string::npos)
      << status.ToString();
}

TEST(BudgetTest, MultiUnitChargeAccountsInBulk) {
  ScopedEnv fault("FTREPAIR_FAULT_BUDGET_UNITS", "100");
  Budget budget(1e9);
  EXPECT_TRUE(budget.Charge(50));
  EXPECT_TRUE(budget.Charge(49));
  EXPECT_FALSE(budget.Charge(5));  // crosses 100
  EXPECT_EQ(budget.units_charged(), 104u);
}

TEST(BudgetTest, WallClockDeadlineLatches) {
  Budget budget(0.000001);  // positive but already in the past
  // The amortized Charge path may take up to kCheckInterval units to
  // notice; Exhausted() consults the clock directly.
  EXPECT_TRUE(budget.Exhausted());
  EXPECT_FALSE(budget.Charge());
  EXPECT_GE(budget.ElapsedMs(), 0.0);
}

// --- Degradation-ladder sweep -----------------------------------------
//
// For every algorithm family and a sweep of fault trip points, a
// budget-limited repair of the paper's running example must: succeed,
// produce a table of unchanged shape, stay close-world valid (every
// repaired cell's new value already occurs in that column of the
// input), and record at least one DegradationEvent when the budget
// tripped early.

void ExpectCloseWorldValid(const Table& input, const RepairResult& result) {
  ASSERT_EQ(result.repaired.num_rows(), input.num_rows());
  ASSERT_EQ(result.repaired.num_columns(), input.num_columns());
  for (const CellChange& change : result.changes) {
    bool found = false;
    for (int r = 0; r < input.num_rows() && !found; ++r) {
      found = input.cell(r, change.col) == change.new_value;
    }
    EXPECT_TRUE(found) << "repair invented value '"
                       << change.new_value.ToString() << "' in column "
                       << change.col;
    EXPECT_EQ(result.repaired.cell(change.row, change.col),
              change.new_value);
  }
}

class LadderSweepTest
    : public ::testing::TestWithParam<std::tuple<RepairAlgorithm, int>> {};

TEST_P(LadderSweepTest, PartialRepairStaysWellFormed) {
  RepairAlgorithm algorithm = std::get<0>(GetParam());
  int fault_units = std::get<1>(GetParam());
  ScopedEnv fault("FTREPAIR_FAULT_BUDGET_UNITS",
                  std::to_string(fault_units));

  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options;
  options.algorithm = algorithm;
  options.default_tau = 0.3;
  Budget budget(1e9);  // limited → the fault seam is live
  options.budget = &budget;

  Repairer repairer(options);
  auto result = repairer.Repair(dirty, fds);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectCloseWorldValid(dirty, result.value());
  if (fault_units <= 4) {
    // With almost no budget the ladder must have taken a step.
    EXPECT_TRUE(result.value().stats.degraded())
        << "fault at " << fault_units << " units recorded no degradation";
  }
  // Every recorded event is fully populated, and the events are
  // stamped by one repair-scoped clock: timestamps never go backwards.
  double last_elapsed = 0.0;
  for (const DegradationEvent& event : result.value().stats.degradations) {
    EXPECT_FALSE(event.component.empty());
    EXPECT_FALSE(event.stage.empty());
    EXPECT_FALSE(event.reason.empty());
    EXPECT_GE(event.elapsed_ms, last_elapsed);
    last_elapsed = event.elapsed_ms;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FaultPoints, LadderSweepTest,
    ::testing::Combine(::testing::Values(RepairAlgorithm::kExact,
                                         RepairAlgorithm::kGreedy,
                                         RepairAlgorithm::kApproJoin),
                       ::testing::Values(1, 2, 8, 32, 128, 512, 4096)));

TEST(LadderTest, ExhaustedBudgetWithoutFallbackSurfacesError) {
  // fall_back_to_greedy=false turns degradation into a hard error: the
  // caller asked for exact-or-nothing.
  ScopedEnv fault("FTREPAIR_FAULT_BUDGET_UNITS", "1");
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kExact;
  options.fall_back_to_greedy = false;
  options.compute_violation_stats = false;
  Budget budget(1e9);
  options.budget = &budget;
  auto result = Repairer(options).Repair(dirty, fds);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();
}

TEST(LadderTest, UnlimitedBudgetMatchesNoBudget) {
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kGreedy;
  options.default_tau = 0.3;
  auto baseline = Repairer(options).Repair(dirty, fds);
  ASSERT_TRUE(baseline.ok());

  Budget budget;  // unlimited
  options.budget = &budget;
  auto budgeted = Repairer(options).Repair(dirty, fds);
  ASSERT_TRUE(budgeted.ok());
  EXPECT_TRUE(budgeted.value().stats.degradations.empty());
  EXPECT_EQ(budgeted.value().changes.size(), baseline.value().changes.size());
  for (int r = 0; r < dirty.num_rows(); ++r) {
    for (int c = 0; c < dirty.num_columns(); ++c) {
      EXPECT_EQ(budgeted.value().repaired.cell(r, c),
                baseline.value().repaired.cell(r, c));
    }
  }
}

TEST(LadderTest, PreExhaustedBudgetYieldsDetectOnlyResult) {
  // A budget that is spent before the call even starts: the repair
  // still succeeds, changes nothing, and records skip events.
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kGreedy;
  Budget budget(0);
  options.budget = &budget;
  auto result = Repairer(options).Repair(dirty, fds);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().changes.empty());
  EXPECT_TRUE(result.value().stats.degraded());
  for (int r = 0; r < dirty.num_rows(); ++r) {
    for (int c = 0; c < dirty.num_columns(); ++c) {
      EXPECT_EQ(result.value().repaired.cell(r, c), dirty.cell(r, c));
    }
  }
}

TEST(LadderTest, CancellationMidPipelineIsCleanPartial) {
  // Cancel before the call (the degenerate race): same contract as a
  // pre-exhausted deadline.
  Table dirty = RandomFDTable(60, 4, 6, 12, /*seed=*/11);
  auto fds = std::move(ParseFDList("f1: c0 -> c1\nf2: c0 -> c2\n",
                                   dirty.schema()))
                 .ValueOrDie();
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kGreedy;
  Budget budget;
  budget.Cancel();
  options.budget = &budget;
  auto result = Repairer(options).Repair(dirty, fds);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().changes.empty());
  EXPECT_TRUE(result.value().stats.degraded());
}

TEST(LadderTest, WallClockDeadlineOnLargerInstanceTerminates) {
  // A real (tiny) wall-clock deadline on a larger random instance:
  // must return promptly and well-formed, whatever it got done.
  Table dirty = RandomFDTable(400, 5, 12, 80, /*seed=*/7);
  auto fds = std::move(ParseFDList(
                 "f1: c0 -> c1\nf2: c0 -> c2\nf3: c3 -> c4\n",
                 dirty.schema()))
                 .ValueOrDie();
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kExact;
  Budget budget(0.05);  // 50 microseconds: trips almost immediately
  options.budget = &budget;
  auto result = Repairer(options).Repair(dirty, fds);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectCloseWorldValid(dirty, result.value());
  // Generous wall-clock sanity bound (not a perf assertion): the run
  // must not have ignored the deadline entirely.
  EXPECT_LT(budget.ElapsedMs(), 30000.0);
}

TEST(LadderTest, DegradationEventsCarryElapsedTimestamps) {
  ScopedEnv fault("FTREPAIR_FAULT_BUDGET_UNITS", "1");
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kExact;
  Budget budget(1e9);
  options.budget = &budget;
  auto result = Repairer(options).Repair(dirty, fds);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().stats.degraded());
  double last_elapsed = 0.0;
  for (const DegradationEvent& event : result.value().stats.degradations) {
    EXPECT_GE(event.elapsed_ms, 0.0);
    // Monotone: all events share the single repair-scoped clock.
    EXPECT_GE(event.elapsed_ms, last_elapsed);
    last_elapsed = event.elapsed_ms;
  }
}

TEST(LadderTest, PhaseTimingsPopulatedAndConsistent) {
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kGreedy;
  options.default_tau = 0.3;
  auto result = Repairer(options).Repair(dirty, fds);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const PhaseTimings& phases = result.value().stats.phases;
  EXPECT_GE(phases.detect_ms, 0.0);
  EXPECT_GE(phases.graph_ms, 0.0);
  EXPECT_GE(phases.solve_ms, 0.0);
  EXPECT_GE(phases.targets_ms, 0.0);
  EXPECT_GE(phases.apply_ms, 0.0);
  EXPECT_GE(phases.stats_ms, 0.0);
  EXPECT_GT(phases.total_ms, 0.0);
  // The phases are disjoint slices of one run, so their sum cannot
  // meaningfully exceed the end-to-end wall time (small slack for
  // timer granularity).
  double phase_sum = phases.detect_ms + phases.graph_ms + phases.solve_ms +
                     phases.targets_ms + phases.apply_ms + phases.stats_ms;
  EXPECT_LE(phase_sum, phases.total_ms * 1.05 + 1.0);
}

}  // namespace
}  // namespace ftrepair
