#include <algorithm>

#include <gtest/gtest.h>

#include "core/appro_multi.h"
#include "core/expansion_multi.h"
#include "core/greedy_multi.h"
#include "detect/detector.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;
using testing_util::CitizensTruth;

struct CitizensComponent {
  Table table = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(table.schema());
  DistanceModel model{table};
  RepairOptions options;
  ComponentContext context;

  CitizensComponent() {
    options.w_l = 0.5;
    options.w_r = 0.5;
    // tau = 0.5 admits the cross-city FT-violations the paper's
    // Example 3 reasons about (t5 vs the New York tuples) while the
    // legitimate phi2/phi3 patterns stay pairwise above 0.5.
    options.tau_by_fd = {{"phi2", 0.5}, {"phi3", 0.5}};
    // The connected component {phi2, phi3}.
    context = BuildComponentContext(table, {&fds[1], &fds[2]}, model,
                                    options);
  }

  Table ApplySolution(const MultiFDSolution& solution) const {
    Table out = table;
    ApplyMultiFDSolution(solution, &out, nullptr);
    return out;
  }
};

TEST(ComponentContextTest, BuildsSigmaAndPhiPatterns) {
  CitizensComponent c;
  EXPECT_EQ(c.context.component_cols, (std::vector<int>{3, 4, 5, 6}));
  EXPECT_EQ(c.context.fds.size(), 2u);
  // Every Sigma-pattern maps to a phi-pattern in both FDs, and the
  // reverse mapping is consistent.
  for (size_t k = 0; k < 2; ++k) {
    for (size_t i = 0; i < c.context.sigma_patterns.size(); ++i) {
      int phi = c.context.phi_of_sigma[k][i];
      ASSERT_GE(phi, 0);
      const auto& back = c.context.sigma_of_phi[k][static_cast<size_t>(phi)];
      EXPECT_NE(std::find(back.begin(), back.end(), static_cast<int>(i)),
                back.end());
    }
  }
  // phi-pattern multiplicity equals the sum of its sigma multiplicities.
  for (size_t k = 0; k < 2; ++k) {
    for (int j = 0; j < c.context.graphs[k].num_patterns(); ++j) {
      int total = 0;
      for (int sigma : c.context.sigma_of_phi[k][static_cast<size_t>(j)]) {
        total += c.context.sigma_patterns[static_cast<size_t>(sigma)].count();
      }
      EXPECT_EQ(c.context.graphs[k].pattern(j).count(), total);
    }
  }
}

TEST(GreedyMultiTest, RepairsT5JointlyPerExample3) {
  // Considering phi2 and phi3 jointly, t5 (Boston, Main, Manhattan, NY)
  // must become (New York, Main, Manhattan, NY): one City change fixes
  // both constraints (§1 Example 3).
  CitizensComponent c;
  RepairStats stats;
  MultiFDSolution solution =
      std::move(SolveGreedyMulti(c.context, c.model, c.options, &stats))
          .ValueOrDie();
  Table repaired = c.ApplySolution(solution);
  EXPECT_EQ(repaired.cell(4, 3), Value("New York"));  // t5.City fixed
  EXPECT_EQ(repaired.cell(4, 6), Value("NY"));        // State untouched
  EXPECT_EQ(repaired.cell(4, 5), Value("Manhattan"));
  // t10 State fixed to MA.
  EXPECT_EQ(repaired.cell(9, 6), Value("MA"));
  // t8 City fixed to Boston.
  EXPECT_EQ(repaired.cell(7, 3), Value("Boston"));
}

TEST(GreedyMultiTest, OutputIsFTConsistent) {
  CitizensComponent c;
  RepairStats stats;
  MultiFDSolution solution =
      std::move(SolveGreedyMulti(c.context, c.model, c.options, &stats))
          .ValueOrDie();
  Table repaired = c.ApplySolution(solution);
  for (size_t k = 1; k <= 2; ++k) {
    EXPECT_TRUE(IsFTConsistent(repaired, c.fds[k], c.model,
                               c.options.FTFor(c.fds[k])))
        << c.fds[k].name();
  }
}

TEST(ApproMultiTest, OutputIsFTConsistent) {
  CitizensComponent c;
  RepairStats stats;
  MultiFDSolution solution =
      std::move(SolveApproMulti(c.context, c.model, c.options, &stats))
          .ValueOrDie();
  Table repaired = c.ApplySolution(solution);
  for (size_t k = 1; k <= 2; ++k) {
    EXPECT_TRUE(IsFTConsistent(repaired, c.fds[k], c.model,
                               c.options.FTFor(c.fds[k])));
  }
  EXPECT_FALSE(stats.join_empty);
}

TEST(ExpansionMultiTest, OptimalOnCitizens) {
  CitizensComponent c;
  RepairStats stats;
  auto exact = SolveExpansionMulti(c.context, c.model, c.options, &stats);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  RepairStats greedy_stats;
  auto greedy =
      SolveGreedyMulti(c.context, c.model, c.options, &greedy_stats);
  RepairStats appro_stats;
  auto appro = SolveApproMulti(c.context, c.model, c.options, &appro_stats);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(appro.ok());
  EXPECT_LE(exact.value().cost, greedy.value().cost + 1e-9);
  EXPECT_LE(exact.value().cost, appro.value().cost + 1e-9);
  // And the exact repair reproduces the Example 3 outcome for t5.
  Table repaired = c.ApplySolution(exact.value());
  EXPECT_EQ(repaired.cell(4, 3), Value("New York"));
}

TEST(ExpansionMultiTest, CloseWorldTargets) {
  // Every repaired projection value must already exist in the table
  // (valid repairs, §2.2).
  CitizensComponent c;
  RepairStats stats;
  auto exact = SolveExpansionMulti(c.context, c.model, c.options, &stats);
  ASSERT_TRUE(exact.ok());
  const MultiFDSolution& solution = exact.value();
  for (size_t i = 0; i < solution.targets.size(); ++i) {
    if (solution.targets[i].empty()) continue;
    for (size_t p = 0; p < solution.component_cols.size(); ++p) {
      int col = solution.component_cols[p];
      bool exists = false;
      for (int r = 0; r < c.table.num_rows() && !exists; ++r) {
        exists = c.table.cell(r, col) == solution.targets[i][p];
      }
      EXPECT_TRUE(exists) << "column " << col << " value "
                          << solution.targets[i][p].ToString();
    }
  }
}

TEST(MultiFDTest, GroupingAblationGivesSameRepairs) {
  CitizensComponent grouped;
  RepairOptions ungrouped_options = grouped.options;
  ungrouped_options.group_tuples = false;
  ComponentContext ungrouped = BuildComponentContext(
      grouped.table, {&grouped.fds[1], &grouped.fds[2]}, grouped.model,
      ungrouped_options);
  RepairStats s1, s2;
  auto a = SolveApproMulti(grouped.context, grouped.model, grouped.options,
                           &s1);
  auto b = SolveApproMulti(ungrouped, grouped.model, ungrouped_options, &s2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Table ta = grouped.table;
  ApplyMultiFDSolution(a.value(), &ta, nullptr);
  Table tb = grouped.table;
  ApplyMultiFDSolution(b.value(), &tb, nullptr);
  for (int r = 0; r < ta.num_rows(); ++r) {
    for (int col : grouped.context.component_cols) {
      EXPECT_EQ(ta.cell(r, col), tb.cell(r, col))
          << "row " << r << " col " << col;
    }
  }
}

TEST(MultiFDTest, LinearScanAblationMatchesTree) {
  CitizensComponent c;
  RepairOptions no_tree = c.options;
  no_tree.use_target_tree = false;
  RepairStats s1, s2;
  auto with_tree = SolveApproMulti(c.context, c.model, c.options, &s1);
  auto without = SolveApproMulti(c.context, c.model, no_tree, &s2);
  ASSERT_TRUE(with_tree.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_NEAR(with_tree.value().cost, without.value().cost, 1e-9);
  EXPECT_GT(s2.targets_materialized, 0u);
}

}  // namespace
}  // namespace ftrepair
