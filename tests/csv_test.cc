#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "test_util.h"

namespace ftrepair {
namespace {

TEST(CsvTest, ParsesSimpleTable) {
  auto result = ReadCsvString("a,b\n1,x\n2,y\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Table& t = result.value();
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.schema().column(0).type, ValueType::kNumber);
  EXPECT_EQ(t.schema().column(1).type, ValueType::kString);
  EXPECT_EQ(t.cell(0, 0), Value(1.0));
  EXPECT_EQ(t.cell(1, 1), Value("y"));
}

TEST(CsvTest, TypeInferenceMixedColumnIsString) {
  Table t = std::move(ReadCsvString("a\n1\nx\n")).ValueOrDie();
  EXPECT_EQ(t.schema().column(0).type, ValueType::kString);
  EXPECT_EQ(t.cell(0, 0), Value("1"));
}

TEST(CsvTest, EmptyCellsStayNullAndDontBreakInference) {
  Table t = std::move(ReadCsvString("a,b\n1,\n2,z\n")).ValueOrDie();
  EXPECT_EQ(t.schema().column(0).type, ValueType::kNumber);
  EXPECT_TRUE(t.cell(0, 1).is_null());
}

TEST(CsvTest, QuotedFields) {
  Table t = std::move(ReadCsvString(
                          "name,notes\n\"Doe, John\",\"said \"\"hi\"\"\"\n"))
                .ValueOrDie();
  EXPECT_EQ(t.cell(0, 0), Value("Doe, John"));
  EXPECT_EQ(t.cell(0, 1), Value("said \"hi\""));
}

TEST(CsvTest, QuotedNewline) {
  Table t = std::move(ReadCsvString("a\n\"line1\nline2\"\n")).ValueOrDie();
  EXPECT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.cell(0, 0), Value("line1\nline2"));
}

TEST(CsvTest, ToleratesCrlfAndMissingTrailingNewline) {
  Table t = std::move(ReadCsvString("a,b\r\n1,2\r\n3,4")).ValueOrDie();
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.cell(1, 1), Value(4.0));
}

TEST(CsvTest, RaggedRowIsError) {
  auto result = ReadCsvString("a,b\n1\n");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  auto result = ReadCsvString("a\n\"oops\n");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST(CsvTest, EmptyInputIsError) {
  EXPECT_FALSE(ReadCsvString("").ok());
}

TEST(CsvTest, HeaderOnlyGivesEmptyTable) {
  Table t = std::move(ReadCsvString("a,b\n")).ValueOrDie();
  EXPECT_EQ(t.num_rows(), 0);
  EXPECT_EQ(t.num_columns(), 2);
}

TEST(CsvTest, RoundTripPreservesData) {
  Table original = testing_util::CitizensDirty();
  std::string text = WriteCsvString(original);
  Table parsed = std::move(ReadCsvString(text)).ValueOrDie();
  ASSERT_EQ(parsed.num_rows(), original.num_rows());
  ASSERT_TRUE(parsed.schema() == original.schema());
  for (int r = 0; r < original.num_rows(); ++r) {
    for (int c = 0; c < original.num_columns(); ++c) {
      EXPECT_EQ(parsed.cell(r, c), original.cell(r, c))
          << "r=" << r << " c=" << c;
    }
  }
}

TEST(CsvTest, WriterQuotesSpecialCharacters) {
  Table t(Schema({{"a", ValueType::kString}}));
  ASSERT_TRUE(t.AppendRow({Value("x,y")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("say \"hi\"")}).ok());
  std::string text = WriteCsvString(t);
  EXPECT_NE(text.find("\"x,y\""), std::string::npos);
  EXPECT_NE(text.find("\"say \"\"hi\"\"\""), std::string::npos);
  // And it still parses back.
  Table parsed = std::move(ReadCsvString(text)).ValueOrDie();
  EXPECT_EQ(parsed.cell(0, 0), Value("x,y"));
  EXPECT_EQ(parsed.cell(1, 0), Value("say \"hi\""));
}

TEST(CsvTest, FileRoundTrip) {
  Table original = testing_util::CitizensDirty();
  std::string path = ::testing::TempDir() + "/ftrepair_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(original, path).ok());
  Table parsed = std::move(ReadCsvFile(path)).ValueOrDie();
  EXPECT_EQ(parsed.num_rows(), original.num_rows());
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIOError) {
  auto result = ReadCsvFile("/nonexistent/dir/file.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

// ---- Blank records (regression: used to be strict ragged-row errors) ----

TEST(CsvTest, BlankLinesAreSkippedInStrictMode) {
  // Interior, consecutive, and trailing blank lines are separators,
  // not zero-field data rows; strict mode used to reject them.
  Table t =
      std::move(ReadCsvString("a,b\n\n1,2\n\n\n3,4\n\n")).ValueOrDie();
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.cell(0, 0), Value(1.0));
  EXPECT_EQ(t.cell(1, 1), Value(4.0));
}

TEST(CsvTest, BlankLinesDontConsumeDataRowIndices) {
  // The bad row is the 0-based *data* row 1 ("x"), not the physical
  // line: blank lines in between must not shift error attribution.
  CsvOptions options;
  options.bad_rows = BadRowPolicy::kSkipBadRows;
  CsvReadReport report;
  Table t = std::move(ReadCsvString("a,b\n\n1,2\n\nx\n3,4\n", options,
                                    &report))
                .ValueOrDie();
  EXPECT_EQ(t.num_rows(), 2);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors[0].row, 1u);
  EXPECT_EQ(report.errors[0].kind, RowErrorKind::kRagged);
}

TEST(CsvTest, CrlfBlankLinesAreSkippedToo) {
  Table t = std::move(ReadCsvString("a,b\r\n\r\n1,2\r\n\r\n")).ValueOrDie();
  EXPECT_EQ(t.num_rows(), 1);
}

TEST(CsvTest, QuotedEmptyFieldIsARecordNotABlankLine) {
  // `""` on its own line is one empty (null) field — quoting is how a
  // writer says "this really is a row".
  Table t = std::move(ReadCsvString("a\n\"\"\nx\n")).ValueOrDie();
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_TRUE(t.cell(0, 0).is_null());
  EXPECT_EQ(t.cell(1, 0), Value("x"));
}

TEST(CsvTest, SingleColumnNullRowsSurviveRoundTrip) {
  // Regression: a lone null cell used to serialize as an empty line,
  // which re-reads as a blank separator and drops the row.
  Table t(Schema({{"a", ValueType::kString}}));
  ASSERT_TRUE(t.AppendRow({Value()}).ok());
  ASSERT_TRUE(t.AppendRow({Value("x")}).ok());
  Table parsed = std::move(ReadCsvString(WriteCsvString(t))).ValueOrDie();
  ASSERT_EQ(parsed.num_rows(), 2);
  EXPECT_TRUE(parsed.cell(0, 0).is_null());
}

// ---- Classic Mac line endings (regression: '\r' was stripped, fusing
// every record into one giant row) ----

TEST(CsvTest, BareCarriageReturnTerminatesRecords) {
  Table t = std::move(ReadCsvString("a,b\r1,2\r3,4\r")).ValueOrDie();
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.cell(0, 0), Value(1.0));
  EXPECT_EQ(t.cell(1, 1), Value(4.0));
}

TEST(CsvTest, CarriageReturnInsideQuotesIsLiteral) {
  Table t = std::move(ReadCsvString("a\n\"x\ry\"\n")).ValueOrDie();
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.cell(0, 0), Value("x\ry"));
}

TEST(CsvTest, MixedTerminatorsParseConsistently) {
  Table t = std::move(ReadCsvString("a\r\n1\r2\n3\r\n")).ValueOrDie();
  ASSERT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.cell(0, 0), Value(1.0));
  EXPECT_EQ(t.cell(2, 0), Value(3.0));
}

// ---- Chunked scanning: every chunking parses identically ----

TEST(CsvTest, ChunkBoundariesInsideQuotesAndEscapesAreInvisible) {
  // Quotes, "" escapes, CRLF pairs and multi-byte cells all straddle
  // chunk boundaries when the chunk is one byte.
  const std::string text =
      "name,notes\r\n\"Doe, John\",\"said \"\"hi\"\"\"\r\n\"line1\nline2\",last\r\n";
  Table whole = std::move(ReadCsvString(text)).ValueOrDie();
  for (size_t chunk : {1u, 2u, 3u, 7u}) {
    CsvOptions options;
    options.chunk_bytes = chunk;
    Table chunked = std::move(ReadCsvString(text, options)).ValueOrDie();
    ASSERT_EQ(chunked.num_rows(), whole.num_rows()) << "chunk=" << chunk;
    for (int r = 0; r < whole.num_rows(); ++r) {
      for (int c = 0; c < whole.num_columns(); ++c) {
        EXPECT_EQ(chunked.cell(r, c), whole.cell(r, c))
            << "chunk=" << chunk << " r=" << r << " c=" << c;
      }
    }
  }
}

// ---- Numeric canonicalization through ingest ----

TEST(CsvTest, NegativeZeroCellEqualsPositiveZero) {
  // Regression: "-0" parsed to IEEE -0.0, which compared == to 0.0 but
  // hashed differently, splitting dictionary/pattern groups that the
  // equality-based solvers then merged — an invariant violation.
  Table t = std::move(ReadCsvString("a,b\n-0,p\n0,q\n0.0,r\n")).ValueOrDie();
  ASSERT_EQ(t.schema().column(0).type, ValueType::kNumber);
  EXPECT_EQ(t.cell(0, 0), t.cell(1, 0));
  EXPECT_EQ(t.cell(0, 0).Hash(), t.cell(1, 0).Hash());
  // All three spellings intern to one dictionary code.
  EXPECT_EQ(t.code(0, 0), t.code(1, 0));
  EXPECT_EQ(t.code(0, 0), t.code(2, 0));
}

// ---- Truncated file reads (regression: silently parsed the prefix) ----

TEST(CsvTest, TruncatedFileReadIsIOErrorNotSilentPrefix) {
  Table original = testing_util::CitizensDirty();
  std::string path = ::testing::TempDir() + "/ftrepair_csv_trunc.csv";
  ASSERT_TRUE(WriteCsvFile(original, path).ok());
  {
    testing_util::ScopedEnv fault("FTREPAIR_FAULT_CSV_IO_AFTER_BYTES", "10");
    auto result = ReadCsvFile(path);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsIOError());
    EXPECT_NE(result.status().message().find("I/O error"), std::string::npos);
  }
  // Seam disarmed: the same file reads fine.
  EXPECT_TRUE(ReadCsvFile(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ftrepair
