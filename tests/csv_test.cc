#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "test_util.h"

namespace ftrepair {
namespace {

TEST(CsvTest, ParsesSimpleTable) {
  auto result = ReadCsvString("a,b\n1,x\n2,y\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Table& t = result.value();
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.schema().column(0).type, ValueType::kNumber);
  EXPECT_EQ(t.schema().column(1).type, ValueType::kString);
  EXPECT_EQ(t.cell(0, 0), Value(1.0));
  EXPECT_EQ(t.cell(1, 1), Value("y"));
}

TEST(CsvTest, TypeInferenceMixedColumnIsString) {
  Table t = std::move(ReadCsvString("a\n1\nx\n")).ValueOrDie();
  EXPECT_EQ(t.schema().column(0).type, ValueType::kString);
  EXPECT_EQ(t.cell(0, 0), Value("1"));
}

TEST(CsvTest, EmptyCellsStayNullAndDontBreakInference) {
  Table t = std::move(ReadCsvString("a,b\n1,\n2,z\n")).ValueOrDie();
  EXPECT_EQ(t.schema().column(0).type, ValueType::kNumber);
  EXPECT_TRUE(t.cell(0, 1).is_null());
}

TEST(CsvTest, QuotedFields) {
  Table t = std::move(ReadCsvString(
                          "name,notes\n\"Doe, John\",\"said \"\"hi\"\"\"\n"))
                .ValueOrDie();
  EXPECT_EQ(t.cell(0, 0), Value("Doe, John"));
  EXPECT_EQ(t.cell(0, 1), Value("said \"hi\""));
}

TEST(CsvTest, QuotedNewline) {
  Table t = std::move(ReadCsvString("a\n\"line1\nline2\"\n")).ValueOrDie();
  EXPECT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.cell(0, 0), Value("line1\nline2"));
}

TEST(CsvTest, ToleratesCrlfAndMissingTrailingNewline) {
  Table t = std::move(ReadCsvString("a,b\r\n1,2\r\n3,4")).ValueOrDie();
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.cell(1, 1), Value(4.0));
}

TEST(CsvTest, RaggedRowIsError) {
  auto result = ReadCsvString("a,b\n1\n");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  auto result = ReadCsvString("a\n\"oops\n");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST(CsvTest, EmptyInputIsError) {
  EXPECT_FALSE(ReadCsvString("").ok());
}

TEST(CsvTest, HeaderOnlyGivesEmptyTable) {
  Table t = std::move(ReadCsvString("a,b\n")).ValueOrDie();
  EXPECT_EQ(t.num_rows(), 0);
  EXPECT_EQ(t.num_columns(), 2);
}

TEST(CsvTest, RoundTripPreservesData) {
  Table original = testing_util::CitizensDirty();
  std::string text = WriteCsvString(original);
  Table parsed = std::move(ReadCsvString(text)).ValueOrDie();
  ASSERT_EQ(parsed.num_rows(), original.num_rows());
  ASSERT_TRUE(parsed.schema() == original.schema());
  for (int r = 0; r < original.num_rows(); ++r) {
    for (int c = 0; c < original.num_columns(); ++c) {
      EXPECT_EQ(parsed.cell(r, c), original.cell(r, c))
          << "r=" << r << " c=" << c;
    }
  }
}

TEST(CsvTest, WriterQuotesSpecialCharacters) {
  Table t(Schema({{"a", ValueType::kString}}));
  ASSERT_TRUE(t.AppendRow({Value("x,y")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("say \"hi\"")}).ok());
  std::string text = WriteCsvString(t);
  EXPECT_NE(text.find("\"x,y\""), std::string::npos);
  EXPECT_NE(text.find("\"say \"\"hi\"\"\""), std::string::npos);
  // And it still parses back.
  Table parsed = std::move(ReadCsvString(text)).ValueOrDie();
  EXPECT_EQ(parsed.cell(0, 0), Value("x,y"));
  EXPECT_EQ(parsed.cell(1, 0), Value("say \"hi\""));
}

TEST(CsvTest, FileRoundTrip) {
  Table original = testing_util::CitizensDirty();
  std::string path = ::testing::TempDir() + "/ftrepair_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(original, path).ok());
  Table parsed = std::move(ReadCsvFile(path)).ValueOrDie();
  EXPECT_EQ(parsed.num_rows(), original.num_rows());
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIOError) {
  auto result = ReadCsvFile("/nonexistent/dir/file.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

}  // namespace
}  // namespace ftrepair
