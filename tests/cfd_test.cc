#include <gtest/gtest.h>

#include "constraint/cfd.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensSchema;

// CFD over phi2 (City -> State): tableau constrains tuples with
// City = "New York" to State = "NY"; a second all-wildcard row keeps the
// plain FD semantics on everything.
CFD MakeCityStateCFD() {
  Schema schema = CitizensSchema();
  FD fd = std::move(FD::Make({schema.IndexOf("City")},
                             {schema.IndexOf("State")}, "phi2"))
              .ValueOrDie();
  std::vector<PatternRow> tableau;
  tableau.push_back({Value("New York"), Value("NY")});
  tableau.push_back({std::nullopt, std::nullopt});
  return std::move(CFD::Make(std::move(fd), std::move(tableau), "cfd2"))
      .ValueOrDie();
}

TEST(CFDTest, MakeValidatesTableauArity) {
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  EXPECT_FALSE(CFD::Make(fd, {{std::nullopt}}).ok());        // arity 1 != 2
  EXPECT_FALSE(CFD::Make(fd, {}).ok());                      // empty tableau
  EXPECT_TRUE(CFD::Make(fd, {{std::nullopt, std::nullopt}}).ok());
}

TEST(CFDTest, MatchesLhsRespectsConstantsAndWildcards) {
  CFD cfd = MakeCityStateCFD();
  Table t = CitizensDirty();
  // Row 0 is a New York tuple, row 6 a Boston tuple.
  EXPECT_TRUE(cfd.MatchesLhs(t.row(0), 0));
  EXPECT_FALSE(cfd.MatchesLhs(t.row(6), 0));
  // Wildcard row matches everything.
  EXPECT_TRUE(cfd.MatchesLhs(t.row(0), 1));
  EXPECT_TRUE(cfd.MatchesLhs(t.row(6), 1));
}

TEST(CFDTest, MatchesRhsChecksConstants) {
  CFD cfd = MakeCityStateCFD();
  Table t = CitizensDirty();
  EXPECT_TRUE(cfd.MatchesRhs(t.row(0), 0));   // NY
  EXPECT_FALSE(cfd.MatchesRhs(t.row(3), 0));  // t4 has State = MA
  EXPECT_TRUE(cfd.MatchesRhs(t.row(3), 1));   // wildcard RHS
}

TEST(CFDTest, ApplicableRows) {
  CFD cfd = MakeCityStateCFD();
  Table t = CitizensDirty();
  std::vector<int> ny = cfd.ApplicableRows(t, 0);
  EXPECT_EQ(ny, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(cfd.ApplicableRows(t, 1).size(), 10u);
}

TEST(CFDTest, ConstantViolations) {
  CFD cfd = MakeCityStateCFD();
  Table t = CitizensDirty();
  // t4 (row 3) is a New York tuple with State = MA: the one constant
  // violation of tableau row 0.
  EXPECT_EQ(cfd.ConstantViolations(t, 0), (std::vector<int>{3}));
  // Wildcard row can never have constant violations.
  EXPECT_TRUE(cfd.ConstantViolations(t, 1).empty());
}

TEST(CFDParserTest, ParsesEmbeddedFdAndTableau) {
  Schema schema = CitizensSchema();
  CFD cfd = std::move(ParseCFD(
                          "cphi: City, Street -> District"
                          " | New York, _ -> _ | Boston, Main -> Financial",
                          schema))
                .ValueOrDie();
  EXPECT_EQ(cfd.name(), "cphi");
  EXPECT_EQ(cfd.fd().lhs(),
            (std::vector<int>{schema.IndexOf("City"),
                              schema.IndexOf("Street")}));
  EXPECT_EQ(cfd.fd().rhs(), (std::vector<int>{schema.IndexOf("District")}));
  ASSERT_EQ(cfd.tableau().size(), 2u);
  // Row 0: constant City, wildcard Street and District.
  ASSERT_TRUE(cfd.tableau()[0][0].has_value());
  EXPECT_EQ(cfd.tableau()[0][0]->ToString(), "New York");
  EXPECT_FALSE(cfd.tableau()[0][1].has_value());
  EXPECT_FALSE(cfd.tableau()[0][2].has_value());
  // Row 1: all constants.
  ASSERT_TRUE(cfd.tableau()[1][2].has_value());
  EXPECT_EQ(cfd.tableau()[1][2]->ToString(), "Financial");
}

TEST(CFDParserTest, TypesTableauConstantsBySchemaColumn) {
  Schema schema = CitizensSchema();
  CFD cfd = std::move(ParseCFD("Education -> Level | Bachelors -> 3", schema))
                .ValueOrDie();
  ASSERT_TRUE(cfd.tableau()[0][1].has_value());
  EXPECT_EQ(cfd.tableau()[0][1]->type(), ValueType::kNumber);
  // A non-numeric constant for the numeric Level column must fail.
  EXPECT_FALSE(ParseCFD("Education -> Level | Bachelors -> abc", schema).ok());
}

TEST(CFDParserTest, RejectsMalformedTableaux) {
  Schema schema = CitizensSchema();
  // No tableau at all.
  EXPECT_FALSE(ParseCFD("City -> State", schema).ok());
  // Arity mismatch against the embedded FD.
  EXPECT_FALSE(ParseCFD("City -> State | NYC, Main -> NY", schema).ok());
  // Tableau row missing the arrow.
  EXPECT_FALSE(ParseCFD("City -> State | NYC NY", schema).ok());
  // Empty tableau row.
  EXPECT_FALSE(ParseCFD("City -> State | ", schema).ok());
  // Broken embedded FD.
  EXPECT_FALSE(ParseCFD("Nope -> State | _ -> _", schema).ok());
}

TEST(CFDParserTest, ListSkipsCommentsAndAggregatesErrors) {
  Schema schema = CitizensSchema();
  auto cfds = std::move(ParseCFDList(
                            "# comment\n"
                            "c1: City -> State | New York -> NY\n"
                            "\n"
                            "c2: Education -> Level | Masters -> 4\n",
                            schema))
                  .ValueOrDie();
  ASSERT_EQ(cfds.size(), 2u);
  EXPECT_EQ(cfds[0].name(), "c1");
  EXPECT_EQ(cfds[1].name(), "c2");
  EXPECT_FALSE(
      ParseCFDList("c1: City -> State | New York -> NY\nbroken\n", schema)
          .ok());
}

}  // namespace
}  // namespace ftrepair
