#include <gtest/gtest.h>

#include "constraint/cfd.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensSchema;

// CFD over phi2 (City -> State): tableau constrains tuples with
// City = "New York" to State = "NY"; a second all-wildcard row keeps the
// plain FD semantics on everything.
CFD MakeCityStateCFD() {
  Schema schema = CitizensSchema();
  FD fd = std::move(FD::Make({schema.IndexOf("City")},
                             {schema.IndexOf("State")}, "phi2"))
              .ValueOrDie();
  std::vector<PatternRow> tableau;
  tableau.push_back({Value("New York"), Value("NY")});
  tableau.push_back({std::nullopt, std::nullopt});
  return std::move(CFD::Make(std::move(fd), std::move(tableau), "cfd2"))
      .ValueOrDie();
}

TEST(CFDTest, MakeValidatesTableauArity) {
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  EXPECT_FALSE(CFD::Make(fd, {{std::nullopt}}).ok());        // arity 1 != 2
  EXPECT_FALSE(CFD::Make(fd, {}).ok());                      // empty tableau
  EXPECT_TRUE(CFD::Make(fd, {{std::nullopt, std::nullopt}}).ok());
}

TEST(CFDTest, MatchesLhsRespectsConstantsAndWildcards) {
  CFD cfd = MakeCityStateCFD();
  Table t = CitizensDirty();
  // Row 0 is a New York tuple, row 6 a Boston tuple.
  EXPECT_TRUE(cfd.MatchesLhs(t.row(0), 0));
  EXPECT_FALSE(cfd.MatchesLhs(t.row(6), 0));
  // Wildcard row matches everything.
  EXPECT_TRUE(cfd.MatchesLhs(t.row(0), 1));
  EXPECT_TRUE(cfd.MatchesLhs(t.row(6), 1));
}

TEST(CFDTest, MatchesRhsChecksConstants) {
  CFD cfd = MakeCityStateCFD();
  Table t = CitizensDirty();
  EXPECT_TRUE(cfd.MatchesRhs(t.row(0), 0));   // NY
  EXPECT_FALSE(cfd.MatchesRhs(t.row(3), 0));  // t4 has State = MA
  EXPECT_TRUE(cfd.MatchesRhs(t.row(3), 1));   // wildcard RHS
}

TEST(CFDTest, ApplicableRows) {
  CFD cfd = MakeCityStateCFD();
  Table t = CitizensDirty();
  std::vector<int> ny = cfd.ApplicableRows(t, 0);
  EXPECT_EQ(ny, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(cfd.ApplicableRows(t, 1).size(), 10u);
}

TEST(CFDTest, ConstantViolations) {
  CFD cfd = MakeCityStateCFD();
  Table t = CitizensDirty();
  // t4 (row 3) is a New York tuple with State = MA: the one constant
  // violation of tableau row 0.
  EXPECT_EQ(cfd.ConstantViolations(t, 0), (std::vector<int>{3}));
  // Wildcard row can never have constant violations.
  EXPECT_TRUE(cfd.ConstantViolations(t, 1).empty());
}

}  // namespace
}  // namespace ftrepair
