#include <algorithm>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "discovery/fd_discovery.h"
#include "gen/error_injector.h"
#include "gen/hosp_gen.h"
#include "gen/tax_gen.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensTruth;

std::string Render(const FD& fd, const Schema& schema) {
  std::string out;
  for (size_t i = 0; i < fd.lhs().size(); ++i) {
    if (i) out += ",";
    out += schema.column(fd.lhs()[static_cast<size_t>(i)]).name;
  }
  out += "->";
  out += schema.column(fd.rhs()[0]).name;
  return out;
}

std::set<std::string> DiscoverSet(const Table& table,
                                  const DiscoveryOptions& options) {
  std::set<std::string> out;
  for (const DiscoveredFD& d :
       std::move(DiscoverFDs(table, options)).ValueOrDie()) {
    out.insert(Render(d.fd, table.schema()));
  }
  return out;
}

TEST(G3ErrorTest, ExactFDHasZeroError) {
  Table truth = CitizensTruth();
  FD phi2 = std::move(FD::Make({3}, {6})).ValueOrDie();  // City -> State
  EXPECT_DOUBLE_EQ(G3Error(truth, phi2), 0.0);
}

TEST(G3ErrorTest, CountsMinimalRemovals) {
  // 4 rows agree, 1 disagrees: removing it fixes the FD => g3 = 0.2.
  Table t(Schema({{"k", ValueType::kString}, {"v", ValueType::kString}}));
  for (int i = 0; i < 4; ++i) (void)t.AppendRow({Value("k"), Value("a")});
  (void)t.AppendRow({Value("k"), Value("b")});
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  EXPECT_DOUBLE_EQ(G3Error(t, fd), 0.2);
}

TEST(G3ErrorTest, MultiAttributeRhs) {
  Table truth = CitizensTruth();
  // City -> (Street, District) does not hold (New York has two streets).
  FD fd = std::move(FD::Make({3}, {4, 5})).ValueOrDie();
  EXPECT_GT(G3Error(truth, fd), 0.0);
  // (City, Street) -> District holds.
  FD fd2 = std::move(FD::Make({3, 4}, {5})).ValueOrDie();
  EXPECT_DOUBLE_EQ(G3Error(truth, fd2), 0.0);
}

TEST(DiscoveryTest, FindsCitizensFDs) {
  Table truth = CitizensTruth();
  DiscoveryOptions options;
  options.max_lhs_size = 2;
  options.max_lhs_distinct_ratio = 0.7;  // Name is a key: skip it as LHS
  std::set<std::string> found = DiscoverSet(truth, options);
  EXPECT_TRUE(found.count("Education->Level")) << "missing phi1";
  EXPECT_TRUE(found.count("City->State")) << "missing phi2";
  // phi3's LHS (City, Street) is subsumed by the minimal Street->District
  // on this tiny instance; accept either form.
  EXPECT_TRUE(found.count("City,Street->District") ||
              found.count("Street->District"));
}

TEST(DiscoveryTest, MinimalityPrunesSupersets) {
  Table truth = CitizensTruth();
  DiscoveryOptions options;
  options.max_lhs_size = 2;
  options.max_lhs_distinct_ratio = 0.7;
  auto discovered = std::move(DiscoverFDs(truth, options)).ValueOrDie();
  // No discovered FD's LHS may be a superset of another discovered
  // LHS with the same RHS.
  for (const DiscoveredFD& a : discovered) {
    for (const DiscoveredFD& b : discovered) {
      if (&a == &b || a.fd.rhs()[0] != b.fd.rhs()[0]) continue;
      bool b_subset_of_a = std::includes(a.fd.lhs().begin(),
                                         a.fd.lhs().end(),
                                         b.fd.lhs().begin(),
                                         b.fd.lhs().end());
      if (b_subset_of_a && a.fd.lhs().size() > b.fd.lhs().size()) {
        FAIL() << Render(a.fd, truth.schema()) << " subsumed by "
               << Render(b.fd, truth.schema());
      }
    }
  }
}

TEST(DiscoveryTest, RecoversPlantedHospFDsFromCleanData) {
  Dataset ds = std::move(GenerateHosp({.num_rows = 600, .seed = 3}))
                   .ValueOrDie();
  DiscoveryOptions options;
  options.max_lhs_size = 1;
  std::set<std::string> found = DiscoverSet(ds.clean, options);
  // Every planted single-LHS FD must be discovered (possibly via an
  // equivalent or more minimal LHS).
  for (const char* expect :
       {"ZipCode->City", "ZipCode->State", "City->CountyName",
        "MeasureCode->MeasureName", "MeasureCode->Condition",
        "MeasureCode->StateAvg"}) {
    EXPECT_TRUE(found.count(expect)) << "missing " << expect;
  }
}

TEST(DiscoveryTest, ApproximateModeSurvivesNoise) {
  Dataset ds = std::move(GenerateHosp({.num_rows = 600, .seed = 3}))
                   .ValueOrDie();
  NoiseOptions noise;
  noise.error_rate = 0.02;
  noise.seed = 5;
  Table dirty =
      std::move(InjectErrors(ds.clean, ds.fds, noise, nullptr)).ValueOrDie();
  DiscoveryOptions exact;
  exact.max_lhs_size = 1;
  std::set<std::string> strict = DiscoverSet(dirty, exact);
  // Exact discovery misses at least one planted FD on dirty data...
  bool all_strict = strict.count("ZipCode->City") &&
                    strict.count("MeasureCode->MeasureName") &&
                    strict.count("City->CountyName");
  EXPECT_FALSE(all_strict);
  // ...while the approximate mode recovers them.
  DiscoveryOptions loose = exact;
  loose.max_g3_error = 0.07;
  std::set<std::string> approx = DiscoverSet(dirty, loose);
  EXPECT_TRUE(approx.count("ZipCode->City"));
  EXPECT_TRUE(approx.count("MeasureCode->MeasureName"));
  EXPECT_TRUE(approx.count("City->CountyName"));
  for (const DiscoveredFD& d :
       std::move(DiscoverFDs(dirty, loose)).ValueOrDie()) {
    EXPECT_LE(d.g3_error, 0.07);
  }
}

TEST(DiscoveryTest, ExcludedColumnsAreSkipped) {
  Table truth = CitizensTruth();
  DiscoveryOptions options;
  options.max_lhs_size = 1;
  options.max_lhs_distinct_ratio = 1.0;
  options.excluded_columns = {truth.schema().IndexOf("Name")};
  for (const DiscoveredFD& d :
       std::move(DiscoverFDs(truth, options)).ValueOrDie()) {
    EXPECT_FALSE(d.fd.UsesColumn(truth.schema().IndexOf("Name")));
  }
}

TEST(DiscoveryTest, NearKeyLhsSkippedByDistinctRatio) {
  Table truth = CitizensTruth();
  DiscoveryOptions options;
  options.max_lhs_size = 1;
  options.max_lhs_distinct_ratio = 0.5;
  for (const DiscoveredFD& d :
       std::move(DiscoverFDs(truth, options)).ValueOrDie()) {
    EXPECT_LE(d.lhs_distinct_ratio, 0.5)
        << Render(d.fd, truth.schema());
  }
}

TEST(DiscoveryTest, RejectsBadOptions) {
  Table truth = CitizensTruth();
  DiscoveryOptions options;
  options.max_lhs_size = 0;
  EXPECT_FALSE(DiscoverFDs(truth, options).ok());
  options.max_lhs_size = 1;
  options.max_g3_error = 1.5;
  EXPECT_FALSE(DiscoverFDs(truth, options).ok());
  options.max_g3_error = 0;
  options.excluded_columns = {42};
  EXPECT_FALSE(DiscoverFDs(truth, options).ok());
}

}  // namespace
}  // namespace ftrepair
