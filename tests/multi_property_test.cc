// Randomized property suite for the multi-FD machinery: exact-vs-greedy
// dominance, FT-consistency, close-world validity and engine agreement
// on small random instances with two overlapping FDs.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/appro_multi.h"
#include "core/expansion_multi.h"
#include "core/greedy_multi.h"
#include "detect/detector.h"

namespace ftrepair {
namespace {

// A random instance over columns (a, b, c) with FDs a->b and b->c,
// seeded from a small set of consistent "entities" plus random flips.
struct Instance {
  Table table{Schema({{"a", ValueType::kString},
                      {"b", ValueType::kString},
                      {"c", ValueType::kString}})};
  std::vector<FD> fds;

  explicit Instance(uint64_t seed, int rows = 24, int entities = 3,
                    int flips = 3) {
    fds.push_back(std::move(FD::Make({0}, {1}, "f1")).ValueOrDie());
    fds.push_back(std::move(FD::Make({1}, {2}, "f2")).ValueOrDie());
    Rng rng(seed);
    for (int r = 0; r < rows; ++r) {
      int e = static_cast<int>(rng.Index(static_cast<size_t>(entities)));
      (void)table.AppendRow({Value("aa" + std::to_string(e)),
                             Value("bb" + std::to_string(e)),
                             Value("cc" + std::to_string(e))});
    }
    for (int f = 0; f < flips; ++f) {
      int r = static_cast<int>(rng.Index(static_cast<size_t>(rows)));
      int c = static_cast<int>(rng.Index(3));
      int e = static_cast<int>(rng.Index(static_cast<size_t>(entities)));
      const char* prefix = c == 0 ? "aa" : c == 1 ? "bb" : "cc";
      table.SetCell(r, c, Value(prefix + std::to_string(e)));
    }
  }
};

RepairOptions InstanceOptions() {
  RepairOptions options;
  // Every distinct value pair ("aa0" vs "aa1") is one edit of three
  // characters apart, so any tau above 0.5/3 links all same-column
  // variants; entities stay separated across both attrs.
  options.default_tau = 0.4;
  return options;
}

class MultiPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    instance_ = std::make_unique<Instance>(GetParam());
    model_ = std::make_unique<DistanceModel>(instance_->table);
    options_ = InstanceOptions();
    context_ = BuildComponentContext(
        instance_->table, {&instance_->fds[0], &instance_->fds[1]}, *model_,
        options_);
  }

  Table Apply(const MultiFDSolution& solution) {
    Table out = instance_->table;
    ApplyMultiFDSolution(solution, &out, nullptr);
    return out;
  }

  std::unique_ptr<Instance> instance_;
  std::unique_ptr<DistanceModel> model_;
  RepairOptions options_;
  ComponentContext context_;
};

TEST_P(MultiPropertyTest, ExactDominatesHeuristics) {
  RepairStats s1, s2, s3;
  auto exact = SolveExpansionMulti(context_, *model_, options_, &s1);
  auto greedy = SolveGreedyMulti(context_, *model_, options_, &s2);
  auto appro = SolveApproMulti(context_, *model_, options_, &s3);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(appro.ok());
  // A heuristic whose chosen sets fail to join leaves tuples unrepaired
  // (cost 0 but inconsistent) — cost comparison is meaningful only for
  // complete repairs. Expansion explicitly searches past such
  // combinations, so its (complete) cost may exceed an empty-join
  // "cost".
  if (!s2.join_empty) {
    EXPECT_LE(exact.value().cost, greedy.value().cost + 1e-9);
  }
  if (!s3.join_empty) {
    EXPECT_LE(exact.value().cost, appro.value().cost + 1e-9);
  }
}

TEST_P(MultiPropertyTest, AllEnginesProduceFTConsistentRepairs) {
  for (int which = 0; which < 3; ++which) {
    RepairStats stats;
    auto solution =
        which == 0 ? SolveExpansionMulti(context_, *model_, options_, &stats)
        : which == 1
            ? SolveGreedyMulti(context_, *model_, options_, &stats)
            : SolveApproMulti(context_, *model_, options_, &stats);
    ASSERT_TRUE(solution.ok()) << which;
    if (stats.join_empty) continue;
    Table repaired = Apply(solution.value());
    for (const FD& fd : instance_->fds) {
      EXPECT_TRUE(IsFTConsistent(repaired, fd, *model_,
                                 options_.FTFor(fd)))
          << "engine " << which << " fd " << fd.name();
    }
  }
}

TEST_P(MultiPropertyTest, RepairsAreCloseWorldValid) {
  RepairStats stats;
  auto solution = SolveGreedyMulti(context_, *model_, options_, &stats);
  ASSERT_TRUE(solution.ok());
  Table repaired = Apply(solution.value());
  for (int c = 0; c < 3; ++c) {
    std::vector<Value> domain = instance_->table.ActiveDomain(c);
    for (int r = 0; r < repaired.num_rows(); ++r) {
      EXPECT_TRUE(std::binary_search(domain.begin(), domain.end(),
                                     repaired.cell(r, c)))
          << "row " << r << " col " << c;
    }
  }
}

TEST_P(MultiPropertyTest, ChosenSetsAreIndependent) {
  RepairStats stats;
  auto solution = SolveGreedyMulti(context_, *model_, options_, &stats);
  ASSERT_TRUE(solution.ok());
  ASSERT_EQ(solution.value().chosen.size(), 2u);
  for (size_t k = 0; k < 2; ++k) {
    std::set<int> members(solution.value().chosen[k].begin(),
                          solution.value().chosen[k].end());
    for (int v : members) {
      for (const ViolationGraph::Edge& e : context_.graphs[k].Neighbors(v)) {
        EXPECT_FALSE(members.count(e.to))
            << "FD " << k << ": chosen set has edge " << v << "-" << e.to;
      }
    }
  }
}

TEST_P(MultiPropertyTest, TreeAndLinearAgreeOnCost) {
  RepairOptions no_tree = options_;
  no_tree.use_target_tree = false;
  RepairStats s1, s2;
  auto with_tree = SolveApproMulti(context_, *model_, options_, &s1);
  auto without = SolveApproMulti(context_, *model_, no_tree, &s2);
  ASSERT_TRUE(with_tree.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_NEAR(with_tree.value().cost, without.value().cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace ftrepair
