#include <gtest/gtest.h>

#include "data/schema.h"
#include "data/table.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;

TEST(SchemaTest, IndexOf) {
  Schema schema({{"a", ValueType::kString}, {"b", ValueType::kNumber}});
  EXPECT_EQ(schema.num_columns(), 2);
  EXPECT_EQ(schema.IndexOf("a"), 0);
  EXPECT_EQ(schema.IndexOf("b"), 1);
  EXPECT_EQ(schema.IndexOf("c"), -1);
  EXPECT_EQ(schema.column(1).type, ValueType::kNumber);
}

TEST(SchemaTest, RequireIndexErrors) {
  Schema schema({{"a", ValueType::kString}});
  EXPECT_TRUE(schema.RequireIndex("a").ok());
  auto missing = schema.RequireIndex("zz");
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST(SchemaTest, Equality) {
  Schema a({{"x", ValueType::kString}});
  Schema b({{"x", ValueType::kString}});
  Schema c({{"x", ValueType::kNumber}});
  Schema d({{"y", ValueType::kString}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(TableTest, AppendRowChecksArity) {
  Table t(Schema({{"a", ValueType::kString}, {"b", ValueType::kString}}));
  EXPECT_TRUE(t.AppendRow({Value("1"), Value("2")}).ok());
  Status bad = t.AppendRow({Value("1")});
  EXPECT_TRUE(bad.IsInvalidArgument());
  EXPECT_EQ(t.num_rows(), 1);
}

TEST(TableTest, CellAccessAndMutation) {
  Table t = CitizensDirty();
  EXPECT_EQ(t.num_rows(), 10);
  EXPECT_EQ(t.num_columns(), 7);
  EXPECT_EQ(t.cell(0, 0), Value("Janaina"));
  EXPECT_EQ(t.cell(5, 1), Value("Masers"));
  t.SetCell(5, 1, Value("Masters"));
  EXPECT_EQ(t.cell(5, 1), Value("Masters"));
}

TEST(TableTest, ActiveDomainIsSortedDistinctNonNull) {
  Table t = CitizensDirty();
  int city = t.schema().IndexOf("City");
  std::vector<Value> domain = t.ActiveDomain(city);
  ASSERT_EQ(domain.size(), 3u);
  EXPECT_EQ(domain[0], Value("Boston"));
  EXPECT_EQ(domain[1], Value("Boton"));
  EXPECT_EQ(domain[2], Value("New York"));
}

TEST(TableTest, ActiveDomainSkipsNulls) {
  Table t(Schema({{"a", ValueType::kString}}));
  ASSERT_TRUE(t.AppendRow({Value("x")}).ok());
  ASSERT_TRUE(t.AppendRow({Value()}).ok());
  EXPECT_EQ(t.ActiveDomain(0).size(), 1u);
}

TEST(TableTest, NumericRange) {
  Table t = CitizensDirty();
  int level = t.schema().IndexOf("Level");
  double mn = 0, mx = 0;
  ASSERT_TRUE(t.NumericRange(level, &mn, &mx));
  EXPECT_DOUBLE_EQ(mn, 1);
  EXPECT_DOUBLE_EQ(mx, 9);
  int city = t.schema().IndexOf("City");
  EXPECT_FALSE(t.NumericRange(city, &mn, &mx));
}

TEST(TableTest, HeadTruncatesAndCopies) {
  Table t = CitizensDirty();
  Table head = t.Head(3);
  EXPECT_EQ(head.num_rows(), 3);
  EXPECT_EQ(head.cell(2, 0), Value("Jieyu"));
  // Beyond size: full copy.
  EXPECT_EQ(t.Head(100).num_rows(), 10);
  // Mutating the head must not touch the original.
  head.SetCell(0, 0, Value("X"));
  EXPECT_EQ(t.cell(0, 0), Value("Janaina"));
}

}  // namespace
}  // namespace ftrepair
