// Memory-governance chaos suite: deterministic fault injection via
// FTREPAIR_FAULT_MEM_BYTES sweeps exhaustion across every pipeline
// phase (ingest, graph, index, solve, targets) x every algorithm x
// thread counts, proving that running out of memory anywhere yields a
// well-formed partial repair or a clean ResourceExhausted naming the
// exhausting phase — never a crash — and that an uninstalled or
// unlimited budget changes nothing at all.

#include <cstdlib>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "common/metrics.h"
#include "common/resource.h"
#include "constraint/fd_parser.h"
#include "core/repairer.h"
#include "data/csv.h"
#include "detect/violation_graph.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;
using testing_util::ScopedEnv;

void ExpectCloseWorldValid(const Table& input, const RepairResult& result) {
  ASSERT_EQ(result.repaired.num_rows(), input.num_rows());
  ASSERT_EQ(result.repaired.num_columns(), input.num_columns());
  for (const CellChange& change : result.changes) {
    bool found = false;
    for (int r = 0; r < input.num_rows() && !found; ++r) {
      found = input.cell(r, change.col) == change.new_value;
    }
    EXPECT_TRUE(found) << "repair invented value '"
                       << change.new_value.ToString() << "' in column "
                       << change.col;
    EXPECT_EQ(result.repaired.cell(change.row, change.col),
              change.new_value);
  }
}

// --- MemoryBudget unit behavior ---------------------------------------

TEST(MemoryBudgetTest, UnlimitedNeverExhausts) {
  MemoryBudget memory;
  EXPECT_FALSE(memory.limited());
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(memory.TryCharge(1 << 20));
  }
  EXPECT_FALSE(memory.Exhausted());
  EXPECT_FALSE(memory.SoftExceeded());
  EXPECT_TRUE(memory.Check("test").ok());
}

TEST(MemoryBudgetTest, UnlimitedIgnoresFaultSeam) {
  ScopedEnv fault("FTREPAIR_FAULT_MEM_BYTES", "1");
  MemoryBudget memory;
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(memory.TryCharge(64));
  EXPECT_FALSE(memory.Exhausted());
}

TEST(MemoryBudgetTest, MalformedFaultSeamIsDisabled) {
  // Satellite contract: a malformed seam value warns and disables the
  // seam instead of silently arming garbage.
  ScopedEnv fault("FTREPAIR_FAULT_MEM_BYTES", "banana");
  MemoryBudget memory(1 << 20);
  EXPECT_TRUE(memory.TryCharge(1024));
  EXPECT_FALSE(memory.Exhausted());
}

TEST(MemoryBudgetTest, FaultSeamTripsAtExactByteCount) {
  ScopedEnv fault("FTREPAIR_FAULT_MEM_BYTES", "100");
  MemoryBudget memory(1 << 30);  // limited, limit far away: only the seam
  EXPECT_TRUE(memory.TryCharge(50));
  EXPECT_TRUE(memory.TryCharge(49));
  EXPECT_FALSE(memory.TryCharge(5));  // crosses 100 charged bytes
  EXPECT_TRUE(memory.Exhausted());
  EXPECT_EQ(memory.charged_total_bytes(), 104u);
  Status status = memory.Check("loop");
  EXPECT_TRUE(status.IsResourceExhausted());
  EXPECT_NE(status.message().find("injected fault"), std::string::npos)
      << status.ToString();
}

TEST(MemoryBudgetTest, HardLimitLatchesAndNamesSite) {
  MemoryBudget memory(1024);
  EXPECT_TRUE(memory.TryCharge(1000, MemPhase::kGraph));
  EXPECT_FALSE(memory.TryCharge(100, MemPhase::kGraph));  // would cross
  EXPECT_TRUE(memory.Exhausted());
  // The failed charge is rolled back from occupancy; peak keeps the
  // attempted high-water.
  EXPECT_EQ(memory.resident_bytes(), 1000u);
  EXPECT_EQ(memory.peak_bytes(), 1100u);
  // Release never un-latches exhaustion.
  memory.Release(1000);
  EXPECT_EQ(memory.resident_bytes(), 0u);
  EXPECT_TRUE(memory.Exhausted());
  EXPECT_FALSE(memory.TryCharge(1));
  Status status = memory.Check("graph edges");
  EXPECT_TRUE(status.IsResourceExhausted());
  EXPECT_NE(status.message().find("graph edges"), std::string::npos);
  EXPECT_NE(status.message().find("hard limit"), std::string::npos)
      << status.ToString();
}

TEST(MemoryBudgetTest, SoftWatermarkLatchesWithoutExhausting) {
  MemoryBudget memory(1000, /*soft_fraction=*/0.5);
  EXPECT_EQ(memory.soft_limit_bytes(), 500u);
  EXPECT_TRUE(memory.TryCharge(400));
  EXPECT_FALSE(memory.SoftExceeded());
  EXPECT_TRUE(memory.TryCharge(200));  // crosses the soft watermark
  EXPECT_TRUE(memory.SoftExceeded());
  EXPECT_FALSE(memory.Exhausted());
  memory.Release(600);  // occupancy drops below the watermark...
  EXPECT_TRUE(memory.SoftExceeded());  // ...but the latch stays
}

TEST(MemoryBudgetTest, ZeroLimitStartsExhausted) {
  MemoryBudget memory(0);
  EXPECT_TRUE(memory.Exhausted());
  EXPECT_TRUE(memory.SoftExceeded());
  EXPECT_FALSE(memory.TryCharge(1));
  EXPECT_TRUE(memory.Check("start").IsResourceExhausted());
}

TEST(MemoryBudgetTest, ReleaseClampsAtZeroAndTracksPeak) {
  MemoryBudget memory(1 << 20);
  EXPECT_TRUE(memory.TryCharge(300));
  memory.Release(100);
  EXPECT_TRUE(memory.TryCharge(50));
  EXPECT_EQ(memory.resident_bytes(), 250u);
  EXPECT_EQ(memory.peak_bytes(), 300u);
  memory.Release(1000);  // over-release clamps
  EXPECT_EQ(memory.resident_bytes(), 0u);
  EXPECT_EQ(memory.peak_bytes(), 300u);
}

TEST(MemoryBudgetTest, PerPhaseAccountingSeparatesCharges) {
  MemoryBudget memory(1 << 20);
  EXPECT_TRUE(memory.TryCharge(10, MemPhase::kIngest));
  EXPECT_TRUE(memory.TryCharge(20, MemPhase::kGraph));
  EXPECT_TRUE(memory.TryCharge(30, MemPhase::kGraph));
  EXPECT_TRUE(memory.TryCharge(40, MemPhase::kTargets));
  EXPECT_EQ(memory.charged_bytes(MemPhase::kIngest), 10u);
  EXPECT_EQ(memory.charged_bytes(MemPhase::kGraph), 50u);
  EXPECT_EQ(memory.charged_bytes(MemPhase::kTargets), 40u);
  EXPECT_EQ(memory.charged_bytes(MemPhase::kSolve), 0u);
  EXPECT_EQ(memory.charged_total_bytes(), 100u);
}

TEST(MemoryBudgetTest, ResourceCheckNeverReturnsOk) {
  Budget budget;           // not exhausted
  MemoryBudget memory;     // not exhausted
  Status generic = ResourceCheck(&budget, &memory, "some cap");
  EXPECT_TRUE(generic.IsResourceExhausted());
  EXPECT_NE(generic.message().find("some cap"), std::string::npos);
  EXPECT_TRUE(ResourceCheck(nullptr, nullptr, "x").IsResourceExhausted());

  MemoryBudget spent(0);
  Status from_memory = ResourceCheck(&budget, &spent, "targets");
  EXPECT_NE(from_memory.message().find("memory budget exhausted"),
            std::string::npos)
      << from_memory.ToString();

  Budget cancelled;
  cancelled.Cancel();
  Status from_budget = ResourceCheck(&cancelled, &spent, "targets");
  EXPECT_NE(from_budget.message().find("cancelled"), std::string::npos)
      << from_budget.ToString();
}

// --- CSV ingest under memory pressure ---------------------------------

TEST(MemoryChaosIngestTest, TinyBudgetFailsCleanlyNamingIngest) {
  CsvOptions options;
  MemoryBudget memory(16);
  options.memory = &memory;
  auto result = ReadCsvString("a,b\n1,2\n3,4\n5,6\n", options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("csv ingest"), std::string::npos)
      << result.status().ToString();
}

TEST(MemoryChaosIngestTest, UnlimitedBudgetReadsIdentically) {
  CsvOptions plain;
  auto baseline = ReadCsvString("a,b\nx,1\ny,2\n", plain);
  ASSERT_TRUE(baseline.ok());
  MemoryBudget memory;
  CsvOptions governed;
  governed.memory = &memory;
  auto result = ReadCsvString("a,b\nx,1\ny,2\n", governed);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().num_rows(), baseline.value().num_rows());
  for (int r = 0; r < baseline.value().num_rows(); ++r) {
    for (int c = 0; c < baseline.value().num_columns(); ++c) {
      EXPECT_EQ(result.value().cell(r, c), baseline.value().cell(r, c));
    }
  }
}

// --- Chaos sweep: fault point x algorithm x threads -------------------
//
// For every algorithm family, thread count, and a sweep of byte trip
// points, a memory-limited repair of the paper's running example must:
// never crash, either succeed with close-world-valid partial output or
// fail with a clean ResourceExhausted, keep DegradationEvents in sync
// with the ftrepair.degradations{stage} counters, and keep event
// timestamps monotone.

const char* const kKnownStages[] = {
    "skip",          "exact->greedy",   "greedy->appro", "greedy->partial",
    "partial-graph", "partial-targets", "soft-valves",
};

// Runs one memory-limited repair and applies the chaos invariants.
// Returns the stages of the recorded degradations (empty when the run
// never degraded or failed outright).
std::vector<std::string> RunChaosRepair(RepairAlgorithm algorithm,
                                        int threads,
                                        const MemoryBudget& memory,
                                        const Budget* budget = nullptr) {
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options;
  options.algorithm = algorithm;
  options.default_tau = 0.3;
  options.threads = threads;
  options.memory = &memory;
  options.budget = budget;

  std::map<std::string, uint64_t> before;
  for (const char* stage : kKnownStages) {
    before[stage] =
        Metrics().GetCounter("ftrepair.degradations", "stage", stage)->value();
  }

  auto result = Repairer(options).Repair(dirty, fds);
  if (!result.ok()) {
    // The only acceptable failure is a clean resource report.
    EXPECT_TRUE(result.status().IsResourceExhausted())
        << result.status().ToString();
    return {};
  }
  ExpectCloseWorldValid(dirty, result.value());

  std::map<std::string, uint64_t> emitted;
  double last_elapsed = 0.0;
  std::vector<std::string> stages;
  for (const DegradationEvent& event : result.value().stats.degradations) {
    EXPECT_FALSE(event.component.empty());
    EXPECT_FALSE(event.stage.empty());
    EXPECT_FALSE(event.reason.empty());
    EXPECT_GE(event.elapsed_ms, last_elapsed);
    last_elapsed = event.elapsed_ms;
    ++emitted[event.stage];
    stages.push_back(event.stage);
  }
  for (const char* stage : kKnownStages) {
    uint64_t after =
        Metrics().GetCounter("ftrepair.degradations", "stage", stage)->value();
    EXPECT_EQ(after - before[stage], emitted[stage])
        << "counter drift for stage " << stage;
  }
  return stages;
}

class MemoryChaosSweepTest
    : public ::testing::TestWithParam<std::tuple<RepairAlgorithm, int, int>> {
};

TEST_P(MemoryChaosSweepTest, PartialRepairStaysWellFormed) {
  auto [algorithm, threads, fault_bytes] = GetParam();
  ScopedEnv fault("FTREPAIR_FAULT_MEM_BYTES", std::to_string(fault_bytes));
  MemoryBudget memory(uint64_t{1} << 40);  // limited → the seam is live
  std::vector<std::string> stages =
      RunChaosRepair(algorithm, threads, memory);
  if (fault_bytes <= 64 && memory.Exhausted()) {
    EXPECT_FALSE(stages.empty())
        << "fault at " << fault_bytes << " bytes recorded no degradation";
  }
}

INSTANTIATE_TEST_SUITE_P(
    FaultPoints, MemoryChaosSweepTest,
    ::testing::Combine(::testing::Values(RepairAlgorithm::kExact,
                                         RepairAlgorithm::kGreedy,
                                         RepairAlgorithm::kApproJoin),
                       ::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1, 64, 512, 4096, 32768, 262144)));

// The Citizens instance is too small to engage the blocking index, so
// the sweep above never crosses the index phase. Force a blocked
// build on a larger random table to chaos-test index construction.
TEST(MemoryChaosIndexTest, BlockedIndexUnderFaultSweepStaysClean) {
  Table dirty = testing_util::RandomFDTable(400, 3, 40, 60, /*seed=*/13);
  auto fds = std::move(ParseFDList("f1: c0 -> c1\nf2: c0 -> c2\n",
                                   dirty.schema()))
                 .ValueOrDie();
  {
    // Untripped governed run: the index phase must actually charge,
    // or this sweep is not covering what it claims to.
    MemoryBudget memory(uint64_t{1} << 40);
    RepairOptions options;
    options.algorithm = RepairAlgorithm::kGreedy;
    options.default_tau = 0.3;
    options.detect_index = DetectIndexMode::kBlocked;
    options.memory = &memory;
    auto result = Repairer(options).Repair(dirty, fds);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(memory.charged_bytes(MemPhase::kIndex), 0u);
  }
  for (int fault_bytes : {1, 1024, 8192, 32768, 262144, 1 << 21}) {
    ScopedEnv fault("FTREPAIR_FAULT_MEM_BYTES", std::to_string(fault_bytes));
    MemoryBudget memory(uint64_t{1} << 40);
    RepairOptions options;
    options.algorithm = RepairAlgorithm::kGreedy;
    options.default_tau = 0.3;
    options.detect_index = DetectIndexMode::kBlocked;
    options.memory = &memory;
    auto result = Repairer(options).Repair(dirty, fds);
    if (result.ok()) {
      ExpectCloseWorldValid(dirty, result.value());
    } else {
      EXPECT_TRUE(result.status().IsResourceExhausted())
          << result.status().ToString();
    }
  }
}

// --- Ladder completeness under both pressure kinds --------------------
//
// Sweeping the trip point across the pipeline must reach every rung of
// the degradation ladder — exact->greedy, greedy->appro, and the
// detect-only bottom ("skip") — under deadline pressure and under
// memory pressure alike.

std::vector<int> LadderSweepPoints() {
  std::vector<int> points;
  for (int p = 1; p <= 1 << 17; p *= 2) points.push_back(p);
  for (int p = 250; p <= 4000; p += 250) points.push_back(p);
  return points;
}

TEST(LadderCompletenessTest, MemoryPressureReachesEveryRung) {
  std::map<std::string, int> seen;
  for (int fault_bytes : LadderSweepPoints()) {
    ScopedEnv fault("FTREPAIR_FAULT_MEM_BYTES", std::to_string(fault_bytes));
    MemoryBudget memory(uint64_t{1} << 40);
    for (const std::string& stage :
         RunChaosRepair(RepairAlgorithm::kExact, 1, memory)) {
      ++seen[stage];
    }
  }
  EXPECT_GT(seen["exact->greedy"], 0) << "exact->greedy rung never taken";
  EXPECT_GT(seen["greedy->appro"], 0) << "greedy->appro rung never taken";
  EXPECT_GT(seen["skip"], 0) << "detect-only rung never taken";
}

TEST(LadderCompletenessTest, DeadlinePressureReachesEveryRung) {
  // Budget units are coarser than bytes, so the trip windows between
  // phases can be only a few units wide. Calibrate against a clean
  // run, then sweep every unit position — no window can be skipped.
  uint64_t total_units = 0;
  {
    Budget budget(1e9);  // limited so units are counted; never trips
    MemoryBudget memory;
    RunChaosRepair(RepairAlgorithm::kExact, 1, memory, &budget);
    total_units = budget.units_charged();
  }
  ASSERT_GT(total_units, 0u);
  std::map<std::string, int> seen;
  for (uint64_t fault_units = 1; fault_units <= total_units + 1;
       ++fault_units) {
    ScopedEnv fault("FTREPAIR_FAULT_BUDGET_UNITS",
                    std::to_string(fault_units));
    Budget budget(1e9);  // limited → the budget seam is live
    MemoryBudget memory;  // unlimited: only the deadline budget trips
    for (const std::string& stage :
         RunChaosRepair(RepairAlgorithm::kExact, 1, memory, &budget)) {
      ++seen[stage];
    }
  }
  EXPECT_GT(seen["exact->greedy"], 0) << "exact->greedy rung never taken";
  EXPECT_GT(seen["greedy->appro"], 0) << "greedy->appro rung never taken";
  EXPECT_GT(seen["skip"], 0) << "detect-only rung never taken";
}

// --- Soft watermark ---------------------------------------------------

TEST(MemoryLadderTest, SoftWatermarkTightensValvesAndStepsExactDown) {
  MemoryBudget memory(uint64_t{1} << 30, /*soft_fraction=*/0.0001);
  // Pre-charge past the (tiny) soft watermark; the hard limit stays
  // far away, so the run completes under tightened valves.
  ASSERT_TRUE(memory.TryCharge(1 << 20));
  ASSERT_TRUE(memory.SoftExceeded());

  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kExact;
  options.default_tau = 0.3;
  options.memory = &memory;
  auto result = Repairer(options).Repair(dirty, fds);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectCloseWorldValid(dirty, result.value());
  bool saw_valves = false;
  bool saw_step = false;
  for (const DegradationEvent& event : result.value().stats.degradations) {
    saw_valves = saw_valves || event.stage == "soft-valves";
    saw_step = saw_step || event.stage == "exact->greedy";
  }
  EXPECT_TRUE(saw_valves) << "soft watermark staged no valve tightening";
  EXPECT_TRUE(saw_step) << "soft watermark did not step exact down";
}

TEST(MemoryLadderTest, SoftWatermarkRespectsClosedFallbackValve) {
  MemoryBudget memory(uint64_t{1} << 30, /*soft_fraction=*/0.0001);
  ASSERT_TRUE(memory.TryCharge(1 << 20));
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kExact;
  options.default_tau = 0.3;
  options.fall_back_to_greedy = false;
  options.memory = &memory;
  auto result = Repairer(options).Repair(dirty, fds);
  // Exact-or-nothing: the soft watermark must not silently degrade.
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const DegradationEvent& event : result.value().stats.degradations) {
    EXPECT_NE(event.stage, "soft-valves");
    EXPECT_NE(event.stage, "exact->greedy");
  }
}

// --- Hard pre-exhaustion ----------------------------------------------

TEST(MemoryLadderTest, PreExhaustedMemoryYieldsDetectOnlyResult) {
  MemoryBudget memory(0);
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kGreedy;
  options.memory = &memory;
  auto result = Repairer(options).Repair(dirty, fds);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().changes.empty());
  EXPECT_TRUE(result.value().stats.degraded());
  for (int r = 0; r < dirty.num_rows(); ++r) {
    for (int c = 0; c < dirty.num_columns(); ++c) {
      EXPECT_EQ(result.value().repaired.cell(r, c), dirty.cell(r, c));
    }
  }
}

TEST(MemoryLadderTest, PreExhaustedMemoryWithoutFallbackSurfacesError) {
  MemoryBudget memory(0);
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kExact;
  options.fall_back_to_greedy = false;
  options.compute_violation_stats = false;
  options.memory = &memory;
  auto result = Repairer(options).Repair(dirty, fds);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("memory budget"),
            std::string::npos)
      << result.status().ToString();
}

// --- Bit-identity without a limit -------------------------------------

TEST(MemoryChaosIdentityTest, NoLimitMatchesBaselineAtEveryThreadCount) {
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions base;
  base.algorithm = RepairAlgorithm::kExact;
  base.default_tau = 0.3;
  base.threads = 1;
  auto baseline = Repairer(base).Repair(dirty, fds);
  ASSERT_TRUE(baseline.ok());

  // An armed seam must be inert without a limited budget installed.
  ScopedEnv fault("FTREPAIR_FAULT_MEM_BYTES", "1");
  MemoryBudget unlimited;
  for (int threads : {1, 2, 4, 8}) {
    for (bool install : {false, true}) {
      RepairOptions options = base;
      options.threads = threads;
      options.memory = install ? &unlimited : nullptr;
      auto result = Repairer(options).Repair(dirty, fds);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_TRUE(result.value().stats.degradations.empty());
      ASSERT_EQ(result.value().changes.size(),
                baseline.value().changes.size())
          << "threads=" << threads << " install=" << install;
      for (size_t i = 0; i < baseline.value().changes.size(); ++i) {
        const CellChange& want = baseline.value().changes[i];
        const CellChange& got = result.value().changes[i];
        EXPECT_EQ(got.row, want.row);
        EXPECT_EQ(got.col, want.col);
        EXPECT_EQ(got.old_value, want.old_value);
        EXPECT_EQ(got.new_value, want.new_value);
      }
      for (int r = 0; r < dirty.num_rows(); ++r) {
        for (int c = 0; c < dirty.num_columns(); ++c) {
          EXPECT_EQ(result.value().repaired.cell(r, c),
                    baseline.value().repaired.cell(r, c));
        }
      }
    }
  }
}

// --- Registry surface -------------------------------------------------

TEST(MemoryMetricsTest, LimitedRunPublishesGaugesAndPhaseHistograms) {
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  MemoryBudget memory(uint64_t{1} << 30);
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kGreedy;
  options.default_tau = 0.3;
  options.memory = &memory;
  auto result = Repairer(options).Repair(dirty, fds);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(memory.charged_total_bytes(), 0u);
  EXPECT_GT(Metrics().GetGauge("ftrepair.memory.peak_bytes")->value(), 0.0);
  std::string snapshot = Metrics().SnapshotJson();
  for (const char* phase : {"ingest", "graph", "index", "solve", "targets",
                            "other"}) {
    EXPECT_NE(snapshot.find("ftrepair.memory.phase_charge_mb{phase=" +
                            std::string(phase) + "}"),
              std::string::npos)
        << "missing per-phase charge histogram for " << phase;
  }
}

}  // namespace
}  // namespace ftrepair
