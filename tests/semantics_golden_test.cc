// Golden end-to-end regression suite for the default (ft-cost) repair
// semantics.
//
// Every (corpus, algorithm) instance is repaired across the full flag
// matrix {columnar on/off} x {threads 1,2,4,8} x {distance kernel
// scalar/bit-parallel} x {detect index all-pairs/blocked}, the whole
// RepairResult is fingerprinted byte for byte (repaired table, change
// list, cost, stats counters), and the fingerprint hash is compared
// against a committed golden. The committed goldens were generated
// BEFORE the RepairSemantics strategy refactor, so a passing run
// proves `--semantics=ft-cost` is bit-identical to the pre-refactor
// pipeline — future refactors diff against these files instead of
// recomputing oracles.
//
// Regenerating (only when an intentional behavior change lands):
//   FTREPAIR_UPDATE_GOLDENS=1 ./semantics_golden_test
// rewrites tests/goldens/ft_cost_fingerprints.txt in the source tree.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/strings.h"
#include "constraint/fd.h"
#include "core/repairer.h"
#include "data/csv.h"
#include "gen/error_injector.h"
#include "gen/hosp_gen.h"
#include "gen/tax_gen.h"
#include "metric/distance.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;

#ifndef FTREPAIR_GOLDEN_DIR
#error "build must define FTREPAIR_GOLDEN_DIR (see tests/CMakeLists.txt)"
#endif

std::string GoldenPath() {
  return std::string(FTREPAIR_GOLDEN_DIR) + "/ft_cost_fingerprints.txt";
}

// Byte-level fingerprint of everything a repair produced (the
// columnar_test differential format: two runs with equal fingerprints
// made the same decisions everywhere).
std::string Fingerprint(const RepairResult& result) {
  std::string fp = WriteCsvString(result.repaired);
  fp += "|changes:";
  for (const CellChange& c : result.changes) {
    fp += std::to_string(c.row) + "," + std::to_string(c.col) + ":" +
          c.old_value.ToString() + "->" + c.new_value.ToString() + ";";
  }
  fp += "|cost:" + FormatDouble(result.stats.repair_cost);
  fp += "|cells:" + std::to_string(result.stats.cells_changed);
  fp += "|tuples:" + std::to_string(result.stats.tuples_changed);
  fp += "|before:" + std::to_string(result.stats.ft_violations_before);
  fp += "|after:" + std::to_string(result.stats.ft_violations_after);
  return fp;
}

// Stable 64-bit FNV-1a of the fingerprint bytes, committed (with the
// byte length) instead of the multi-kilobyte fingerprint itself.
std::string FingerprintDigest(const std::string& fp) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : fp) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%016llx:%zu",
                static_cast<unsigned long long>(h), fp.size());
  return buf;
}

// One repair corpus of the golden matrix.
struct Corpus {
  std::string name;
  Table table;
  std::vector<FD> fds;
  double w_l = 0.5;
  double w_r = 0.5;
  double default_tau = 0.2;
  std::unordered_map<std::string, double> tau_by_fd;
};

Table DirtySlice(const Dataset& dataset, int rows) {
  NoiseOptions noise;
  noise.error_rate = 0.04;
  Table dirty =
      std::move(InjectErrors(dataset.clean, dataset.fds, noise, nullptr))
          .ValueOrDie();
  return dirty.Head(rows);
}

// Citizens at full size; HOSP/Tax sliced so the exact expansion solver
// finishes in test time (its valves would otherwise degrade the run,
// which is still deterministic but stops pinning the exact rung).
std::vector<Corpus> GoldenCorpora() {
  std::vector<Corpus> corpora;
  {
    Corpus c;
    c.name = "citizens";
    c.table = CitizensDirty();
    c.fds = CitizensFDs(c.table.schema());
    c.default_tau = 0.4;
    corpora.push_back(std::move(c));
  }
  {
    Dataset hosp =
        std::move(GenerateHosp({.num_rows = 400, .seed = 7})).ValueOrDie();
    Corpus c;
    c.name = "hosp";
    c.table = DirtySlice(hosp, 400);
    c.fds = hosp.fds;
    c.w_l = hosp.recommended_w_l;
    c.w_r = hosp.recommended_w_r;
    c.tau_by_fd = hosp.recommended_tau;
    corpora.push_back(std::move(c));
  }
  {
    Dataset tax =
        std::move(GenerateTax({.num_rows = 300, .seed = 11})).ValueOrDie();
    Corpus c;
    c.name = "tax";
    c.table = DirtySlice(tax, 300);
    c.fds = tax.fds;
    c.w_l = tax.recommended_w_l;
    c.w_r = tax.recommended_w_r;
    c.tau_by_fd = tax.recommended_tau;
    corpora.push_back(std::move(c));
  }
  return corpora;
}

RepairOptions BaseOptions(const Corpus& corpus, RepairAlgorithm algorithm) {
  RepairOptions options;
  options.algorithm = algorithm;
  options.w_l = corpus.w_l;
  options.w_r = corpus.w_r;
  options.default_tau = corpus.default_tau;
  options.tau_by_fd = corpus.tau_by_fd;
  return options;
}

const char* AlgorithmKey(RepairAlgorithm algorithm) {
  switch (algorithm) {
    case RepairAlgorithm::kExact:
      return "exact";
    case RepairAlgorithm::kGreedy:
      return "greedy";
    case RepairAlgorithm::kApproJoin:
      return "appro";
  }
  return "?";
}

bool UpdateMode() {
  const char* env = std::getenv("FTREPAIR_UPDATE_GOLDENS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// The full matrix evaluation: every corpus x algorithm pinned to ONE
// digest across {columnar} x {threads} x {kernel} x {index} — one
// golden per (corpus, algorithm), because none of those knobs may
// change a single output byte.
void ComputeDigests(std::map<std::string, std::string>* digests) {
  for (const Corpus& corpus : GoldenCorpora()) {
    for (RepairAlgorithm algorithm :
         {RepairAlgorithm::kExact, RepairAlgorithm::kGreedy,
          RepairAlgorithm::kApproJoin}) {
      const std::string key =
          corpus.name + "/" + AlgorithmKey(algorithm);
      std::string reference;
      // Axis 1: columnar x threads (kernel/index at defaults).
      for (bool columnar : {true, false}) {
        for (int threads : {1, 2, 4, 8}) {
          RepairOptions options = BaseOptions(corpus, algorithm);
          options.columnar = columnar;
          options.threads = threads;
          auto result = Repairer(options).Repair(corpus.table, corpus.fds);
          ASSERT_TRUE(result.ok()) << result.status().ToString();
          std::string fp = Fingerprint(result.value());
          if (reference.empty()) {
            reference = fp;
          } else {
            ASSERT_EQ(FingerprintDigest(fp), FingerprintDigest(reference))
                << key << " diverged at columnar=" << columnar
                << " threads=" << threads;
          }
        }
      }
      // Axis 2: distance kernel x detect index (threads=2, both
      // columnar settings) — same digest again.
      for (DistanceKernel kernel :
           {DistanceKernel::kScalar, DistanceKernel::kBitParallel}) {
        SetDistanceKernel(kernel);
        for (DetectIndexMode index :
             {DetectIndexMode::kAllPairs, DetectIndexMode::kBlocked}) {
          for (bool columnar : {true, false}) {
            RepairOptions options = BaseOptions(corpus, algorithm);
            options.columnar = columnar;
            options.threads = 2;
            options.detect_index = index;
            auto result =
                Repairer(options).Repair(corpus.table, corpus.fds);
            ASSERT_TRUE(result.ok()) << result.status().ToString();
            ASSERT_EQ(FingerprintDigest(Fingerprint(result.value())),
                      FingerprintDigest(reference))
                << key << " diverged at kernel="
                << DistanceKernelName(kernel)
                << " index=" << DetectIndexModeName(index)
                << " columnar=" << columnar;
          }
        }
      }
      SetDistanceKernel(DistanceKernel::kAuto);
      (*digests)[key] = FingerprintDigest(reference);
    }
  }
}

TEST(SemanticsGoldenTest, FtCostMatrixMatchesCommittedGoldens) {
  std::map<std::string, std::string> digests;
  ComputeDigests(&digests);
  if (HasFatalFailure()) return;
  ASSERT_EQ(digests.size(), 9u);  // 3 corpora x 3 algorithms

  if (UpdateMode()) {
    std::ofstream out(GoldenPath());
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    out << "# Pre-refactor ft-cost RepairResult fingerprint digests\n"
        << "# (FNV-1a 64 of the full fingerprint, ':', byte length).\n"
        << "# One digest per corpus/algorithm: every {columnar} x\n"
        << "# {threads 1,2,4,8} x {distance kernel} x {detect index}\n"
        << "# combination must reproduce it byte for byte.\n"
        << "# Regenerate: FTREPAIR_UPDATE_GOLDENS=1 "
           "./semantics_golden_test\n";
    for (const auto& [key, digest] : digests) {
      out << key << "=" << digest << "\n";
    }
    GTEST_SKIP() << "goldens rewritten at " << GoldenPath();
  }

  std::map<std::string, std::string> goldens;
  {
    std::ifstream in(GoldenPath());
    ASSERT_TRUE(in.good())
        << GoldenPath()
        << " missing; run with FTREPAIR_UPDATE_GOLDENS=1 to create it";
    std::string line;
    while (std::getline(in, line)) {
      size_t hash = line.find('#');
      if (hash != std::string::npos) line = line.substr(0, hash);
      std::string body(Trim(line));
      if (body.empty()) continue;
      size_t eq = body.find('=');
      ASSERT_NE(eq, std::string::npos) << "malformed golden: " << line;
      goldens[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
  EXPECT_EQ(digests, goldens)
      << "ft-cost output drifted from the pre-refactor goldens";
}

}  // namespace
}  // namespace ftrepair
