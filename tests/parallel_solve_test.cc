// Solve-phase concurrency suite: the per-component fan-out in
// Repairer::Repair and the per-group CFD fan-out in RepairCFDs must be
// bit-identical to the serial run at every thread count — down to the
// CellChange ordering, the degradation sequence and the exact repair
// cost — plus regression coverage for the two historical CFD-path
// bugs (trusted rows overwritten, auto_threshold ignored).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/repairer.h"
#include "detect/threshold.h"
#include "gen/error_injector.h"
#include "gen/hosp_gen.h"
#include "gen/tax_gen.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;

// Field-by-field equality of two repair results; EXPECT_EQ on the
// doubles on purpose — "bit-identical at any thread count" is the
// contract, not "close".
void ExpectResultsIdentical(const RepairResult& reference,
                            const RepairResult& got) {
  ASSERT_EQ(reference.changes.size(), got.changes.size());
  for (size_t i = 0; i < reference.changes.size(); ++i) {
    SCOPED_TRACE("change " + std::to_string(i));
    EXPECT_EQ(reference.changes[i].row, got.changes[i].row);
    EXPECT_EQ(reference.changes[i].col, got.changes[i].col);
    EXPECT_EQ(reference.changes[i].old_value, got.changes[i].old_value);
    EXPECT_EQ(reference.changes[i].new_value, got.changes[i].new_value);
  }
  ASSERT_EQ(reference.repaired.num_rows(), got.repaired.num_rows());
  for (int r = 0; r < reference.repaired.num_rows(); ++r) {
    for (int c = 0; c < reference.repaired.schema().num_columns(); ++c) {
      EXPECT_EQ(reference.repaired.cell(r, c), got.repaired.cell(r, c))
          << "cell (" << r << ", " << c << ")";
    }
  }
  EXPECT_EQ(reference.stats.repair_cost, got.stats.repair_cost);
  EXPECT_EQ(reference.stats.cells_changed, got.stats.cells_changed);
  EXPECT_EQ(reference.stats.tuples_changed, got.stats.tuples_changed);
  EXPECT_EQ(reference.stats.trusted_conflicts, got.stats.trusted_conflicts);
  ASSERT_EQ(reference.stats.degradations.size(),
            got.stats.degradations.size());
  for (size_t i = 0; i < reference.stats.degradations.size(); ++i) {
    SCOPED_TRACE("degradation " + std::to_string(i));
    EXPECT_EQ(reference.stats.degradations[i].component,
              got.stats.degradations[i].component);
    EXPECT_EQ(reference.stats.degradations[i].stage,
              got.stats.degradations[i].stage);
  }
}

RepairOptions CitizensOptions(RepairAlgorithm algorithm) {
  RepairOptions options;
  options.algorithm = algorithm;
  options.tau_by_fd = {{"phi1", 0.30}, {"phi2", 0.5}, {"phi3", 0.5}};
  return options;
}

TEST(ParallelSolveTest, BitIdenticalAcrossThreadCountsOnCitizens) {
  // phi1 and {phi2, phi3} are two independent components.
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  for (RepairAlgorithm algorithm :
       {RepairAlgorithm::kGreedy, RepairAlgorithm::kExact,
        RepairAlgorithm::kApproJoin}) {
    RepairOptions serial = CitizensOptions(algorithm);
    Repairer reference_repairer(serial);
    RepairResult reference =
        std::move(reference_repairer.Repair(dirty, fds)).ValueOrDie();
    for (int threads : {2, 4, 8, 0}) {
      RepairOptions opts = serial;
      opts.threads = threads;
      Repairer repairer(opts);
      RepairResult got = std::move(repairer.Repair(dirty, fds)).ValueOrDie();
      SCOPED_TRACE("algorithm=" + std::string(RepairAlgorithmName(algorithm)) +
                   " threads=" + std::to_string(threads));
      ExpectResultsIdentical(reference, got);
    }
  }
}

class ParallelSolveGeneratorTest : public ::testing::TestWithParam<bool> {
 protected:
  Dataset Generate(int rows) {
    if (GetParam()) {
      return std::move(GenerateHosp({.num_rows = rows, .seed = 13}))
          .ValueOrDie();
    }
    return std::move(GenerateTax({.num_rows = rows, .seed = 13}))
        .ValueOrDie();
  }
};

TEST_P(ParallelSolveGeneratorTest, BitIdenticalAcrossThreadCounts) {
  Dataset ds = Generate(400);
  NoiseOptions noise;
  noise.error_rate = 0.05;
  noise.seed = 29;
  Table dirty =
      std::move(InjectErrors(ds.clean, ds.fds, noise, nullptr)).ValueOrDie();
  RepairOptions serial;
  serial.algorithm = RepairAlgorithm::kGreedy;
  serial.w_l = ds.recommended_w_l;
  serial.w_r = ds.recommended_w_r;
  for (const auto& [name, tau] : ds.recommended_tau) {
    serial.tau_by_fd[name] = tau;
  }
  serial.compute_violation_stats = false;
  Repairer reference_repairer(serial);
  RepairResult reference =
      std::move(reference_repairer.Repair(dirty, ds.fds)).ValueOrDie();
  for (int threads : {2, 4, 8, 0}) {
    RepairOptions opts = serial;
    opts.threads = threads;
    Repairer repairer(opts);
    RepairResult got = std::move(repairer.Repair(dirty, ds.fds)).ValueOrDie();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectResultsIdentical(reference, got);
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, ParallelSolveGeneratorTest,
                         ::testing::Bool());

TEST(ParallelSolveTest, DegradationSequenceDeterministicUnderExactFallback) {
  // A starved frontier makes every component fall off the exact rung
  // (budget-independent, so fully deterministic): the merged
  // degradation sequence must come out in component order with
  // monotone elapsed_ms at every thread count.
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions serial = CitizensOptions(RepairAlgorithm::kExact);
  serial.max_frontier = 1;
  Repairer reference_repairer(serial);
  RepairResult reference =
      std::move(reference_repairer.Repair(dirty, fds)).ValueOrDie();
  ASSERT_FALSE(reference.stats.degradations.empty());
  for (int threads : {1, 2, 4, 8}) {
    RepairOptions opts = serial;
    opts.threads = threads;
    Repairer repairer(opts);
    RepairResult got = std::move(repairer.Repair(dirty, fds)).ValueOrDie();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectResultsIdentical(reference, got);
    double last = 0;
    for (const DegradationEvent& event : got.stats.degradations) {
      EXPECT_GE(event.elapsed_ms, last);
      last = event.elapsed_ms;
    }
  }
}

// ---------------------------------------------------------------------------
// CFD path.

CFD CitizensStateCfd(const Schema& schema) {
  FD fd = std::move(FD::Make({schema.IndexOf("City")},
                             {schema.IndexOf("State")}, "phi2"))
              .ValueOrDie();
  std::vector<PatternRow> tableau;
  tableau.push_back({Value("New York"), Value("NY")});  // constant rule
  tableau.push_back({std::nullopt, std::nullopt});      // variable rule
  return std::move(CFD::Make(fd, std::move(tableau), "c1")).ValueOrDie();
}

TEST(ParallelCfdTest, TrustedRowSurvivesConstantPinning) {
  // Row 3 is (New York, MA): it violates the constant rule, but as a
  // trusted row it must keep MA and surface a trusted conflict —
  // historically the pinning loop overwrote it.
  Table dirty = CitizensDirty();
  Schema schema = dirty.schema();
  RepairOptions options;
  options.tau_by_fd = {{"phi2", 0.5}};
  options.trusted_rows = {3};
  Repairer repairer(options);
  RepairResult result =
      std::move(repairer.RepairCFDs(dirty, {CitizensStateCfd(schema)}))
          .ValueOrDie();
  EXPECT_EQ(result.repaired.cell(3, schema.IndexOf("State")), Value("MA"));
  EXPECT_GE(result.stats.trusted_conflicts, 1u);
  for (const CellChange& change : result.changes) {
    EXPECT_NE(change.row, 3);
  }
}

TEST(ParallelCfdTest, TrustedRowSurvivesVariableRepair) {
  // Minority-truth idiom: nine ("aaaaaa", right) rows and one trusted
  // ("aaaaab", right) row. Untrusted, the variable rule repairs the
  // singleton toward the majority; trusted, the singleton is pinned
  // and never written — historically the CFD variable path dropped
  // the mask and rewrote it anyway.
  Table t(Schema({{"k", ValueType::kString}, {"v", ValueType::kString}}));
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(t.AppendRow({Value("aaaaaa"), Value("right")}).ok());
  }
  ASSERT_TRUE(t.AppendRow({Value("aaaaab"), Value("right")}).ok());
  FD fd = std::move(FD::Make({0}, {1}, "phi")).ValueOrDie();
  std::vector<PatternRow> wildcard;
  wildcard.push_back({std::nullopt, std::nullopt});
  CFD cfd = std::move(CFD::Make(fd, std::move(wildcard), "c1")).ValueOrDie();
  RepairOptions baseline;
  baseline.tau_by_fd = {{"phi", 0.3}};
  Repairer baseline_repairer(baseline);
  RepairResult untrusted =
      std::move(baseline_repairer.RepairCFDs(t, {cfd})).ValueOrDie();
  ASSERT_EQ(untrusted.repaired.cell(9, 0), Value("aaaaaa"))
      << "baseline must actually repair row 9 for this regression to bite";
  RepairOptions options = baseline;
  options.trusted_rows = {9};
  Repairer repairer(options);
  RepairResult result =
      std::move(repairer.RepairCFDs(t, {cfd})).ValueOrDie();
  EXPECT_EQ(result.repaired.cell(9, 0), Value("aaaaab"));
  for (const CellChange& change : result.changes) {
    EXPECT_NE(change.row, 9);
  }
  // Trust inverts the repair direction: the majority rows now move
  // toward the pinned minority pattern (trust overrides frequency).
  EXPECT_EQ(result.repaired.cell(0, 0), Value("aaaaab"));
}

TEST(ParallelCfdTest, AutoThresholdMatchesExplicitTau) {
  // RepairCFDs with auto_threshold must behave exactly like a run
  // whose tau_by_fd was resolved by SuggestThreshold up front —
  // historically the CFD path silently used default_tau instead.
  Table dirty = CitizensDirty();
  Schema schema = dirty.schema();
  CFD cfd = CitizensStateCfd(schema);
  RepairOptions auto_opts;
  auto_opts.auto_threshold = true;
  auto_opts.default_tau = 0.05;  // tiny: ignoring auto_threshold shows
  Repairer auto_repairer(auto_opts);
  RepairResult with_auto =
      std::move(auto_repairer.RepairCFDs(dirty, {cfd})).ValueOrDie();

  DistanceModel model(dirty);
  ThresholdOptions topt;
  topt.w_l = auto_opts.w_l;
  topt.w_r = auto_opts.w_r;
  topt.fallback = auto_opts.default_tau;
  double suggested = SuggestThreshold(dirty, cfd.fd(), model, topt);
  RepairOptions explicit_opts;
  explicit_opts.default_tau = auto_opts.default_tau;
  explicit_opts.tau_by_fd = {{"phi2", suggested}};
  Repairer explicit_repairer(explicit_opts);
  RepairResult with_explicit =
      std::move(explicit_repairer.RepairCFDs(dirty, {cfd})).ValueOrDie();
  ExpectResultsIdentical(with_explicit, with_auto);
}

TEST(ParallelCfdTest, BitIdenticalAcrossThreadCounts) {
  // Two column-disjoint CFDs (Education->Level and City->State) form
  // two groups: the grouped fan-out must reproduce the serial result.
  Table dirty = CitizensDirty();
  Schema schema = dirty.schema();
  FD phi1 = std::move(FD::Make({schema.IndexOf("Education")},
                               {schema.IndexOf("Level")}, "phi1"))
                .ValueOrDie();
  std::vector<PatternRow> wildcard;
  wildcard.push_back({std::nullopt, std::nullopt});
  CFD cfd1 = std::move(CFD::Make(phi1, std::move(wildcard), "c0"))
                 .ValueOrDie();
  CFD cfd2 = CitizensStateCfd(schema);
  std::vector<CFD> cfds = {cfd1, cfd2};
  RepairOptions serial;
  serial.tau_by_fd = {{"phi1", 0.30}, {"phi2", 0.5}};
  serial.trusted_rows = {0};
  Repairer reference_repairer(serial);
  RepairResult reference =
      std::move(reference_repairer.RepairCFDs(dirty, cfds)).ValueOrDie();
  EXPECT_GT(reference.stats.cells_changed, 0);
  for (int threads : {2, 4, 8, 0}) {
    RepairOptions opts = serial;
    opts.threads = threads;
    Repairer repairer(opts);
    RepairResult got =
        std::move(repairer.RepairCFDs(dirty, cfds)).ValueOrDie();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectResultsIdentical(reference, got);
  }
}

}  // namespace
}  // namespace ftrepair
