// Differential harness for the blocking candidate index
// (detect/block_index.h): a ViolationGraph built with
// DetectIndexMode::kBlocked must be byte-identical — same edges, same
// order, same doubles, same truncation flag — to the historical
// all-pairs build, across datasets, (tau, w_l, w_r) sweeps, thread
// counts, clipping and budget exhaustion. The fingerprint helper
// serializes every edge in hexfloat so any drifted bit fails loudly.

#include <cstdlib>
#include <iomanip>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "common/metrics.h"
#include "data/table.h"
#include "detect/block_index.h"
#include "detect/detector.h"
#include "detect/violation_graph.h"
#include "gen/dataset.h"
#include "gen/error_injector.h"
#include "gen/hosp_gen.h"
#include "gen/tax_gen.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;
using testing_util::RandomFDTable;

// Serializes everything the graph build promises to keep bit-identical
// across join strategies and thread counts: vertex count, per-vertex
// adjacency in stored order with hexfloat weights, derived aggregates,
// and the truncation flag. Candidate-accounting stats are deliberately
// excluded — those legitimately differ between modes.
std::string Fingerprint(const ViolationGraph& g) {
  std::ostringstream os;
  os << std::hexfloat;
  os << "n=" << g.num_patterns() << " e=" << g.num_edges()
     << " trunc=" << g.truncated() << "\n";
  for (int i = 0; i < g.num_patterns(); ++i) {
    os << i << ":";
    for (const ViolationGraph::Edge& e : g.Neighbors(i)) {
      os << " (" << e.to << "," << e.proj_dist << "," << e.unit_cost << ")";
    }
    os << " min=" << g.MinEdgeCost(i) << "\n";
  }
  os << "total=" << g.TotalMinEdgeCost() << "\n";
  return os.str();
}

ViolationGraph BuildMode(const Table& t, const FD& fd,
                         const DistanceModel& model, double w_l, double w_r,
                         double tau, DetectIndexMode mode, int threads = 1,
                         const Budget* budget = nullptr) {
  FTOptions opts{w_l, w_r, tau, threads, mode};
  return ViolationGraph::Build(BuildPatterns(t, fd.attrs()), fd, model, opts,
                               budget);
}

// Asserts the accounting invariants every complete build must satisfy,
// and returns the graph for further checks.
void CheckAccounting(const ViolationGraph& g) {
  uint64_t n = static_cast<uint64_t>(g.num_patterns());
  EXPECT_EQ(g.candidates_generated(),
            g.candidates_filtered() + g.candidates_verified());
  EXPECT_LE(g.candidates_generated(), n * (n > 0 ? n - 1 : 0) / 2);
}

// The core differential assertion: blocked == all-pairs, byte for byte.
void ExpectModesIdentical(const Table& t, const FD& fd,
                          const DistanceModel& model, double w_l, double w_r,
                          double tau) {
  ViolationGraph all =
      BuildMode(t, fd, model, w_l, w_r, tau, DetectIndexMode::kAllPairs);
  ViolationGraph blocked =
      BuildMode(t, fd, model, w_l, w_r, tau, DetectIndexMode::kBlocked);
  EXPECT_EQ(Fingerprint(all), Fingerprint(blocked))
      << "fd=" << fd.name() << " tau=" << tau << " w_l=" << w_l
      << " w_r=" << w_r;
  CheckAccounting(all);
  CheckAccounting(blocked);
  // The index may only *reduce* the candidate stream, never grow it.
  EXPECT_LE(blocked.candidates_generated(), all.candidates_generated());
  EXPECT_EQ(all.index_mode(), DetectIndexMode::kAllPairs);
  EXPECT_EQ(blocked.index_mode(), DetectIndexMode::kBlocked);
}

const double kTaus[] = {0.0, 0.05, 0.2, 0.5};
const std::pair<double, double> kWeights[] = {
    {1.0, 0.0}, {0.5, 0.5}, {0.3, 0.7}};

void SweepTable(const Table& t, const std::vector<FD>& fds) {
  DistanceModel model(t);
  for (const FD& fd : fds) {
    for (double tau : kTaus) {
      for (const auto& w : kWeights) {
        ExpectModesIdentical(t, fd, model, w.first, w.second, tau);
      }
    }
  }
}

Table HospSlice(int rows) {
  HospOptions opts;
  opts.num_rows = rows;
  opts.seed = 7;
  Dataset ds = std::move(GenerateHosp(opts)).ValueOrDie();
  NoiseOptions noise;
  noise.error_rate = 0.05;
  return std::move(InjectErrors(ds.clean, ds.fds, noise)).ValueOrDie();
}

std::vector<FD> HospFDs(int rows) {
  HospOptions opts;
  opts.num_rows = rows;
  opts.seed = 7;
  return std::move(GenerateHosp(opts)).ValueOrDie().fds;
}

TEST(BlockIndexTest, CitizensFullSweepIdentical) {
  Table t = CitizensDirty();
  SweepTable(t, CitizensFDs(t.schema()));
}

TEST(BlockIndexTest, HospSliceSweepIdentical) {
  // 1200 rows of dirty HOSP; all nine FDs under the full (tau, w)
  // sweep. Exercises exact keys (discrete-like provider numbers),
  // numeric columns, and the q-gram path on zips/phones/cities.
  Table t = HospSlice(1200);
  SweepTable(t, HospFDs(1200));
}

TEST(BlockIndexTest, TaxSliceSweepIdentical) {
  TaxOptions opts;
  opts.num_rows = 1000;
  opts.seed = 11;
  Dataset ds = std::move(GenerateTax(opts)).ValueOrDie();
  NoiseOptions noise;
  noise.error_rate = 0.05;
  Table t = std::move(InjectErrors(ds.clean, ds.fds, noise)).ValueOrDie();
  SweepTable(t, ds.fds);
}

TEST(BlockIndexTest, RandomTablesSweepIdentical) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Table t = RandomFDTable(80, 3, 10, 30, seed);
    FD fd01 = std::move(FD::Make({0}, {1}, "r01")).ValueOrDie();
    FD fd012 = std::move(FD::Make({0, 1}, {2}, "r012")).ValueOrDie();
    SweepTable(t, {fd01, fd012});
  }
}

TEST(BlockIndexTest, ThreadCountsBitIdentical) {
  // Blocked builds at 1/2/4/8 threads must all match the serial
  // all-pairs build — the sharded replay-merge composes with the index.
  Table t = HospSlice(1500);
  std::vector<FD> fds = HospFDs(1500);
  DistanceModel model(t);
  const FD& fd = fds[2];  // h3: ZipCode -> City
  std::string want = Fingerprint(
      BuildMode(t, fd, model, 0.7, 0.3, 0.2, DetectIndexMode::kAllPairs, 1));
  for (int threads : {1, 2, 4, 8}) {
    ViolationGraph g = BuildMode(t, fd, model, 0.7, 0.3, 0.2,
                                 DetectIndexMode::kBlocked, threads);
    EXPECT_EQ(want, Fingerprint(g)) << "threads=" << threads;
    CheckAccounting(g);
  }
  // And all-pairs itself stays thread-invariant alongside.
  for (int threads : {2, 8}) {
    EXPECT_EQ(want, Fingerprint(BuildMode(t, fd, model, 0.7, 0.3, 0.2,
                                          DetectIndexMode::kAllPairs,
                                          threads)))
        << "threads=" << threads;
  }
}

TEST(BlockIndexTest, Tau0ClassicalSemanticsIdentical) {
  // The exact-match bucket join under classical options (w_l=1, w_r=0,
  // tau=0) — the Remark of §2.1 — on every citizens FD.
  Table t = CitizensDirty();
  DistanceModel model(t);
  for (const FD& fd : CitizensFDs(t.schema())) {
    ExpectModesIdentical(t, fd, model, 1.0, 0.0, 0.0);
  }
}

TEST(BlockIndexTest, CandidateReductionOnHosp) {
  // The acceptance bar scaled down: at 1500 dirty HOSP rows, h3 with
  // the recommended weights at tau=0.2 must cut generated candidates
  // by at least 5x versus all-pairs, with an identical edge list.
  Table t = HospSlice(1500);
  std::vector<FD> fds = HospFDs(1500);
  DistanceModel model(t);
  const FD& fd = fds[2];
  ViolationGraph all =
      BuildMode(t, fd, model, 0.7, 0.3, 0.2, DetectIndexMode::kAllPairs);
  ViolationGraph blocked =
      BuildMode(t, fd, model, 0.7, 0.3, 0.2, DetectIndexMode::kBlocked);
  ASSERT_EQ(Fingerprint(all), Fingerprint(blocked));
  ASSERT_GT(all.candidates_generated(), 0u);
  EXPECT_LE(blocked.candidates_generated() * 5, all.candidates_generated())
      << "blocked=" << blocked.candidates_generated()
      << " allpairs=" << all.candidates_generated();
}

TEST(BlockIndexTest, BudgetExhaustedBlockedRunIsWellFormed) {
  // Byte-identity is out of reach under an exhausting budget (the two
  // modes charge different candidate streams, as documented on
  // FTOptions::index); instead the truncated blocked graph must flag
  // itself and emit a subset of the complete edge set.
  Table t = RandomFDTable(80, 3, 12, 25, 5);
  FD fd = std::move(FD::Make({0}, {1}, "rb")).ValueOrDie();
  DistanceModel model(t);
  ViolationGraph full =
      BuildMode(t, fd, model, 0.5, 0.5, 0.45, DetectIndexMode::kBlocked);
  ASSERT_FALSE(full.truncated());
  std::set<std::pair<int, int>> full_edges;
  for (int i = 0; i < full.num_patterns(); ++i) {
    for (const ViolationGraph::Edge& e : full.Neighbors(i)) {
      full_edges.emplace(std::min(i, e.to), std::max(i, e.to));
    }
  }
  setenv("FTREPAIR_FAULT_BUDGET_UNITS", "40", 1);
  Budget budget(1e9);
  ViolationGraph g = BuildMode(t, fd, model, 0.5, 0.5, 0.45,
                               DetectIndexMode::kBlocked, 1, &budget);
  unsetenv("FTREPAIR_FAULT_BUDGET_UNITS");
  EXPECT_TRUE(g.truncated());
  CheckAccounting(g);
  for (int i = 0; i < g.num_patterns(); ++i) {
    for (const ViolationGraph::Edge& e : g.Neighbors(i)) {
      EXPECT_TRUE(full_edges.count(
          {std::min(i, e.to), std::max(i, e.to)}))
          << "truncated build invented edge " << i << "-" << e.to;
    }
  }
  EXPECT_LE(g.num_edges(), full.num_edges());
}

TEST(BlockIndexTest, BudgetExhaustedAllPairsStillTruncates) {
  // The same fault seam through the historical path, as a control.
  setenv("FTREPAIR_FAULT_BUDGET_UNITS", "40", 1);
  Table t = RandomFDTable(80, 3, 12, 25, 5);
  FD fd = std::move(FD::Make({0}, {1}, "rb")).ValueOrDie();
  DistanceModel model(t);
  Budget budget(1e9);
  ViolationGraph g = BuildMode(t, fd, model, 0.5, 0.5, 0.45,
                               DetectIndexMode::kAllPairs, 1, &budget);
  unsetenv("FTREPAIR_FAULT_BUDGET_UNITS");
  EXPECT_TRUE(g.truncated());
  CheckAccounting(g);
}

TEST(BlockIndexTest, AutoStaysAllPairsOnSmallTables) {
  // Below kAutoMinPatterns the auto heuristic must keep the historical
  // join, so every pre-existing small-table behavior is untouched.
  Table t = CitizensDirty();
  DistanceModel model(t);
  for (const FD& fd : CitizensFDs(t.schema())) {
    ViolationGraph g =
        BuildMode(t, fd, model, 0.5, 0.5, 0.2, DetectIndexMode::kAuto);
    EXPECT_EQ(g.index_mode(), DetectIndexMode::kAllPairs) << fd.name();
  }
}

TEST(BlockIndexTest, AutoPicksBlockedOnLargeSelectiveInput) {
  Table t = HospSlice(4000);
  std::vector<FD> fds = HospFDs(4000);
  DistanceModel model(t);
  const FD& fd = fds[2];  // zips: short strings, tight kmax
  std::vector<Pattern> patterns = BuildPatterns(t, fd.attrs());
  ASSERT_GE(static_cast<int>(patterns.size()), BlockIndex::kAutoMinPatterns);
  ViolationGraph g =
      BuildMode(t, fd, model, 0.7, 0.3, 0.2, DetectIndexMode::kAuto);
  EXPECT_EQ(g.index_mode(), DetectIndexMode::kBlocked);
  EXPECT_EQ(Fingerprint(g),
            Fingerprint(BuildMode(t, fd, model, 0.7, 0.3, 0.2,
                                  DetectIndexMode::kAllPairs)));
}

TEST(BlockIndexTest, AutoFallsBackWhenNoSoundFilterExists) {
  // Jaccard columns support neither the exact key nor the q-gram
  // filter, so auto must refuse the index no matter the table size.
  Table t = HospSlice(1500);
  std::vector<FD> fds = HospFDs(1500);
  DistanceModel model(t);
  const FD& fd = fds[2];
  for (int col : fd.attrs()) {
    model.SetColumnMetric(col, ColumnMetric::kJaccard);
  }
  ViolationGraph g =
      BuildMode(t, fd, model, 0.7, 0.3, 0.2, DetectIndexMode::kAuto);
  EXPECT_EQ(g.index_mode(), DetectIndexMode::kAllPairs);
}

TEST(BlockIndexTest, ForcedBlockedWithoutFiltersStillIdentical) {
  // kBlocked on an input where no attribute supports a filter must
  // degrade to a sound (if unselective) candidate stream — never to a
  // wrong edge set.
  Table t = CitizensDirty();
  DistanceModel model(t);
  std::vector<FD> fds = CitizensFDs(t.schema());
  for (int col : fds[1].attrs()) {
    model.SetColumnMetric(col, ColumnMetric::kJaccard);
  }
  ExpectModesIdentical(t, fds[1], model, 0.5, 0.5, 0.2);
  ExpectModesIdentical(t, fds[1], model, 0.5, 0.5, 0.0);
}

TEST(BlockIndexTest, DiscreteMetricSweepIdentical) {
  // kDiscrete columns: exact keys at tau=0 and — when w > tau — at
  // tau > 0 too (any differing pair already costs w > tau).
  Table t = RandomFDTable(60, 2, 8, 20, 9);
  FD fd = std::move(FD::Make({0}, {1}, "rd")).ValueOrDie();
  DistanceModel model(t);
  model.SetColumnMetric(0, ColumnMetric::kDiscrete);
  model.SetColumnMetric(1, ColumnMetric::kDiscrete);
  for (double tau : kTaus) {
    for (const auto& w : kWeights) {
      ExpectModesIdentical(t, fd, model, w.first, w.second, tau);
    }
  }
}

TEST(BlockIndexTest, InducedSubgraphPropagatesIndexStats) {
  Table t = HospSlice(800);
  std::vector<FD> fds = HospFDs(800);
  DistanceModel model(t);
  ViolationGraph g =
      BuildMode(t, fds[2], model, 0.7, 0.3, 0.2, DetectIndexMode::kBlocked);
  for (const auto& comp : g.ConnectedComponents()) {
    ViolationGraph sub = g.InducedSubgraph(comp);
    EXPECT_EQ(sub.candidates_generated(), g.candidates_generated());
    EXPECT_EQ(sub.candidates_verified(), g.candidates_verified());
    EXPECT_EQ(sub.candidates_filtered(), g.candidates_filtered());
    EXPECT_EQ(sub.index_mode(), g.index_mode());
  }
}

TEST(BlockIndexTest, DetectIndexModeNames) {
  EXPECT_STREQ(DetectIndexModeName(DetectIndexMode::kAuto), "auto");
  EXPECT_STREQ(DetectIndexModeName(DetectIndexMode::kAllPairs), "allpairs");
  EXPECT_STREQ(DetectIndexModeName(DetectIndexMode::kBlocked), "blocked");
}

// --- FindFTViolations through both modes, including the clip path ---

std::string ViolationsKey(const std::vector<Violation>& v) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const Violation& x : v) {
    os << x.row1 << "," << x.row2 << "," << x.distance << ";";
  }
  return os.str();
}

TEST(BlockIndexTest, FindFTViolationsModesAgree) {
  Table t = HospSlice(600);
  std::vector<FD> fds = HospFDs(600);
  DistanceModel model(t);
  for (size_t max_pairs : {size_t{3}, size_t{1000000}}) {
    FTOptions all_opts{0.7, 0.3, 0.2, 1, DetectIndexMode::kAllPairs};
    FTOptions blk_opts{0.7, 0.3, 0.2, 1, DetectIndexMode::kBlocked};
    bool clip_a = false, clip_b = false;
    PairAccounting acc_a, acc_b;
    std::vector<Violation> a = FindFTViolations(
        t, fds[2], model, all_opts, max_pairs, nullptr, nullptr, &clip_a,
        &acc_a);
    std::vector<Violation> b = FindFTViolations(
        t, fds[2], model, blk_opts, max_pairs, nullptr, nullptr, &clip_b,
        &acc_b);
    EXPECT_EQ(ViolationsKey(a), ViolationsKey(b))
        << "max_pairs=" << max_pairs;
    EXPECT_EQ(clip_a, clip_b);
    EXPECT_EQ(acc_a.candidates_generated,
              acc_a.candidates_filtered + acc_a.candidates_verified);
    EXPECT_EQ(acc_b.candidates_generated,
              acc_b.candidates_filtered + acc_b.candidates_verified);
    EXPECT_LE(acc_b.candidates_generated, acc_a.candidates_generated);
  }
}

// --- The unified pair accounting of the exact finder (satellite fix) ---

TEST(BlockIndexTest, ExactFinderAccountingCountsEveryPair) {
  Table t = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(t.schema());
  uint64_t want = CountExactViolations(t, fds[1]);
  ASSERT_GT(want, 0u);
  bool clipped = true;
  PairAccounting acc;
  std::vector<Violation> v = FindExactViolations(
      t, fds[1], std::numeric_limits<size_t>::max(), &clipped, &acc);
  EXPECT_FALSE(clipped);
  EXPECT_EQ(v.size(), want);
  EXPECT_EQ(acc.candidates_generated, want);
  EXPECT_EQ(acc.candidates_verified, want);
  EXPECT_EQ(acc.candidates_filtered, 0u);
}

TEST(BlockIndexTest, ExactFinderAccountingCountsClipTrippingPair) {
  Table t = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(t.schema());
  uint64_t total = CountExactViolations(t, fds[1]);
  ASSERT_GT(total, 2u);
  bool clipped = false;
  PairAccounting acc;
  std::vector<Violation> v =
      FindExactViolations(t, fds[1], 2, &clipped, &acc);
  EXPECT_TRUE(clipped);
  EXPECT_EQ(v.size(), 2u);
  // The pair that tripped the cap was proven violating before being
  // dropped, so it counts as generated+verified work performed.
  EXPECT_EQ(acc.candidates_generated, 3u);
  EXPECT_EQ(acc.candidates_verified, 3u);
  EXPECT_EQ(acc.candidates_filtered, 0u);
}

TEST(BlockIndexTest, ExactFinderFeedsCandidateCounters) {
  Table t = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(t.schema());
  Counter* generated =
      Metrics().GetCounter("ftrepair.detect.candidates_generated");
  Counter* verified =
      Metrics().GetCounter("ftrepair.detect.candidates_verified");
  uint64_t g0 = generated->value();
  uint64_t v0 = verified->value();
  PairAccounting acc;
  FindExactViolations(t, fds[1], std::numeric_limits<size_t>::max(), nullptr,
                      &acc);
  EXPECT_EQ(generated->value() - g0, acc.candidates_generated);
  EXPECT_EQ(verified->value() - v0, acc.candidates_verified);
}

TEST(BlockIndexTest, GraphBuildFeedsCandidateCounters) {
  Table t = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(t.schema());
  DistanceModel model(t);
  Counter* generated =
      Metrics().GetCounter("ftrepair.detect.candidates_generated");
  Counter* verified =
      Metrics().GetCounter("ftrepair.detect.candidates_verified");
  Counter* filtered =
      Metrics().GetCounter("ftrepair.detect.candidates_filtered");
  uint64_t g0 = generated->value();
  uint64_t v0 = verified->value();
  uint64_t f0 = filtered->value();
  ViolationGraph g =
      BuildMode(t, fds[0], model, 0.5, 0.5, 0.35, DetectIndexMode::kAllPairs);
  EXPECT_EQ(generated->value() - g0, g.candidates_generated());
  EXPECT_EQ(verified->value() - v0, g.candidates_verified());
  EXPECT_EQ(filtered->value() - f0, g.candidates_filtered());
}

}  // namespace
}  // namespace ftrepair
