#include <gtest/gtest.h>

#include "detect/detector.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;
using testing_util::CitizensTruth;
using testing_util::RandomFDTable;

// Brute-force FT-violation pair count, for cross-checking the grouped
// implementation.
uint64_t BruteForceFTCount(const Table& t, const FD& fd,
                           const DistanceModel& model,
                           const FTOptions& opts) {
  uint64_t count = 0;
  for (int i = 0; i < t.num_rows(); ++i) {
    for (int j = i + 1; j < t.num_rows(); ++j) {
      bool differ = false;
      for (int c : fd.attrs()) {
        if (t.cell(i, c) != t.cell(j, c)) {
          differ = true;
          break;
        }
      }
      if (!differ) continue;
      double d =
          model.ProjectionDistance(fd, t.row(i), t.row(j), opts.w_l, opts.w_r);
      if (d <= opts.tau) ++count;
    }
  }
  return count;
}

TEST(DetectorTest, PaperExample4ClassicalViolation) {
  // (t4, t8) violate phi1: same Education (Masters), different Level.
  // (t4, t6) do not: Education differs.
  Table t = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(t.schema());
  std::vector<Violation> violations = FindExactViolations(t, fds[0]);
  bool has_t4_t8 = false;
  bool has_t4_t6 = false;
  for (const Violation& v : violations) {
    if (v.row1 == 3 && v.row2 == 7) has_t4_t8 = true;
    if (v.row1 == 3 && v.row2 == 5) has_t4_t6 = true;
  }
  EXPECT_TRUE(has_t4_t8);
  EXPECT_FALSE(has_t4_t6);
  EXPECT_FALSE(IsConsistent(t, fds[0]));
}

TEST(DetectorTest, TruthIsClassicallyConsistent) {
  Table truth = CitizensTruth();
  std::vector<FD> fds = CitizensFDs(truth.schema());
  EXPECT_TRUE(IsConsistent(truth, fds));
}

TEST(DetectorTest, PaperExample6FTViolation) {
  // tau = 0.35: dist(t4^phi1, t6^phi1) ~= 0.07 < tau => FT-violation,
  // so D is not FT-consistent and the typo in t6[Education] is caught.
  Table t = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(t.schema());
  DistanceModel model(t);
  FTOptions opts{0.5, 0.5, 0.35};
  std::vector<Violation> violations =
      FindFTViolations(t, fds[0], model, opts);
  bool has_t4_t6 = false;
  for (const Violation& v : violations) {
    if (v.row1 == 3 && v.row2 == 5) {
      has_t4_t6 = true;
      EXPECT_NEAR(v.distance, 0.5 / 7.0, 1e-9);
    }
  }
  EXPECT_TRUE(has_t4_t6);
  EXPECT_FALSE(IsFTConsistent(t, fds[0], model, opts));
}

TEST(DetectorTest, FTCapturesErrorsEqualityCannot) {
  // t8[City] = "Boton" conflicts with no tuple under string equality
  // w.r.t. phi2, but is an FT-violation with the Boston tuples (§1
  // Example 3).
  Table t = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(t.schema());
  DistanceModel model(t);
  bool exact_touches_t8 = false;
  for (const Violation& v : FindExactViolations(t, fds[1])) {
    if (v.row1 == 7 || v.row2 == 7) exact_touches_t8 = true;
  }
  EXPECT_FALSE(exact_touches_t8);
  bool ft_touches_t8 = false;
  FTOptions opts{0.5, 0.5, 0.35};
  for (const Violation& v : FindFTViolations(t, fds[1], model, opts)) {
    if (v.row1 == 7 || v.row2 == 7) ft_touches_t8 = true;
  }
  EXPECT_TRUE(ft_touches_t8);
}

TEST(DetectorTest, ClassicalDegenerationProperty) {
  // With w_l = 1, w_r = 0, tau = 0 FT semantics equals classical
  // semantics (§2.1 Remark) — on the running example and random tables.
  Table citizens = CitizensDirty();
  std::vector<FD> cfds = CitizensFDs(citizens.schema());
  DistanceModel cmodel(citizens);
  for (const FD& fd : cfds) {
    EXPECT_EQ(CountFTViolations(citizens, fd, cmodel, ClassicalFTOptions()),
              CountExactViolations(citizens, fd));
  }
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Table t = RandomFDTable(60, 3, 5, 12, seed);
    FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
    DistanceModel model(t);
    EXPECT_EQ(CountFTViolations(t, fd, model, ClassicalFTOptions()),
              CountExactViolations(t, fd))
        << "seed " << seed;
  }
}

class DetectorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DetectorPropertyTest, GroupedCountMatchesBruteForce) {
  Table t = RandomFDTable(50, 4, 6, 15, GetParam());
  FD fd = std::move(FD::Make({0, 2}, {1})).ValueOrDie();
  DistanceModel model(t);
  for (double tau : {0.1, 0.3, 0.6}) {
    FTOptions opts{0.5, 0.5, tau};
    EXPECT_EQ(CountFTViolations(t, fd, model, opts),
              BruteForceFTCount(t, fd, model, opts))
        << "tau " << tau;
  }
}

TEST_P(DetectorPropertyTest, Theorem1FTConsistencyImpliesConsistency) {
  // tau >= w_r * |Y|: FT-consistent => classically consistent.
  Table t = RandomFDTable(40, 3, 8, 6, GetParam() * 13 + 1);
  FD fd = std::move(FD::Make({0}, {1, 2})).ValueOrDie();
  DistanceModel model(t);
  double w_r = 0.5;
  FTOptions opts{0.5, w_r, w_r * fd.rhs_size()};
  if (IsFTConsistent(t, fd, model, opts)) {
    EXPECT_TRUE(IsConsistent(t, fd));
  } else {
    SUCCEED();  // implication vacuously holds
  }
  // Contrapositive check: classically inconsistent => FT-inconsistent.
  if (!IsConsistent(t, fd)) {
    EXPECT_FALSE(IsFTConsistent(t, fd, model, opts));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(DetectorTest, ExactCountFormulaMatchesPairList) {
  Table t = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(t.schema());
  for (const FD& fd : fds) {
    EXPECT_EQ(CountExactViolations(t, fd),
              FindExactViolations(t, fd).size());
  }
}

TEST(DetectorTest, MaxPairsCapRespected) {
  Table t = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(t.schema());
  DistanceModel model(t);
  EXPECT_LE(FindExactViolations(t, fds[1], 2).size(), 2u);
  EXPECT_LE(
      FindFTViolations(t, fds[1], model, FTOptions{0.5, 0.5, 0.5}, 3).size(),
      3u);
}

bool SortedByRowPair(const std::vector<Violation>& v) {
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i - 1].row1 > v[i].row1) return false;
    if (v[i - 1].row1 == v[i].row1 && v[i - 1].row2 >= v[i].row2) {
      return false;
    }
  }
  return true;
}

TEST(DetectorTest, ClippedOutputIsSortedAndReported) {
  // Regression: FindFTViolations used to return early at max_pairs,
  // skipping the final sort (nondeterministic order) and reporting
  // nothing about the dropped pairs.
  Table t = RandomFDTable(60, 3, 6, 20, 21);
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  FTOptions opts{0.5, 0.5, 0.5};
  std::vector<Violation> all = FindFTViolations(t, fd, model, opts);
  ASSERT_GT(all.size(), 5u);
  EXPECT_TRUE(SortedByRowPair(all));

  bool clipped = false;
  std::vector<Violation> capped =
      FindFTViolations(t, fd, model, opts, 5, nullptr, nullptr, &clipped);
  EXPECT_EQ(capped.size(), 5u);
  EXPECT_TRUE(clipped);
  EXPECT_TRUE(SortedByRowPair(capped));
  // The capped call keeps a subset of the full, sorted list.
  for (const Violation& v : capped) {
    bool found = false;
    for (const Violation& w : all) {
      found = found || (w.row1 == v.row1 && w.row2 == v.row2);
    }
    EXPECT_TRUE(found) << v.row1 << "," << v.row2;
  }
  // An uncapped call must not report a clip.
  clipped = true;
  FindFTViolations(t, fd, model, opts, SIZE_MAX, nullptr, nullptr, &clipped);
  EXPECT_FALSE(clipped);
  // A cap equal to the exact size is not a clip either.
  clipped = true;
  std::vector<Violation> snug = FindFTViolations(t, fd, model, opts,
                                                 all.size(), nullptr, nullptr,
                                                 &clipped);
  EXPECT_EQ(snug.size(), all.size());
  EXPECT_FALSE(clipped);
}

TEST(DetectorTest, ExactClippedOutputIsSortedAndReported) {
  Table t = RandomFDTable(60, 3, 5, 25, 33);
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  std::vector<Violation> all = FindExactViolations(t, fd);
  ASSERT_GT(all.size(), 4u);
  EXPECT_TRUE(SortedByRowPair(all));
  bool clipped = false;
  std::vector<Violation> capped = FindExactViolations(t, fd, 4, &clipped);
  EXPECT_EQ(capped.size(), 4u);
  EXPECT_TRUE(clipped);
  EXPECT_TRUE(SortedByRowPair(capped));
  clipped = true;
  FindExactViolations(t, fd, SIZE_MAX, &clipped);
  EXPECT_FALSE(clipped);
}

TEST(DetectorTest, MultiFDConsistencyHelpers) {
  Table truth = CitizensTruth();
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(truth.schema());
  DistanceModel model(dirty);
  FTOptions opts{0.5, 0.5, 0.3};
  EXPECT_TRUE(IsConsistent(truth, fds));
  EXPECT_FALSE(IsConsistent(dirty, fds));
  EXPECT_FALSE(IsFTConsistent(dirty, fds, model, opts));
}

}  // namespace
}  // namespace ftrepair
