#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/timer.h"

namespace ftrepair {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  Status s = Status::InvalidArgument("bad tau");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad tau");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad tau");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(std::move(r).ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  FTR_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::OK();
}

Status Chain(int x, int* out) {
  FTR_RETURN_NOT_OK(UseHalf(x, out));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(Chain(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status s = Chain(7, &out);
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\ta b\n"), "a b");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringsTest, ToLower) { EXPECT_EQ(ToLower("AbC1"), "abc1"); }

TEST(StringsTest, ParseDouble) {
  double d = 0;
  EXPECT_TRUE(ParseDouble("3.5", &d));
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_TRUE(ParseDouble(" -2 ", &d));
  EXPECT_DOUBLE_EQ(d, -2);
  EXPECT_FALSE(ParseDouble("", &d));
  EXPECT_FALSE(ParseDouble("abc", &d));
  EXPECT_FALSE(ParseDouble("1.5x", &d));
  EXPECT_FALSE(ParseDouble("nan", &d));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3), "3");
  EXPECT_EQ(FormatDouble(-42), "-42");
  EXPECT_EQ(FormatDouble(3.5), "3.5");
  EXPECT_EQ(FormatDouble(0.25), "0.25");
}

TEST(RngTest, DeterministicBySeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(8);
  bool differs = false;
  Rng a2(7);
  for (int i = 0; i < 10; ++i) differs |= (a2.Next() != c.Next());
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformInBounds) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0);
    EXPECT_LT(d, 1);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.3);
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(RngTest, SkewedIndexFavorsSmallRanks) {
  Rng rng(4);
  int low = 0;
  int total = 20000;
  for (int i = 0; i < total; ++i) {
    if (rng.SkewedIndex(100) < 10) ++low;
  }
  // Skew: the first decile should receive far more than 10% of draws.
  EXPECT_GT(low, total / 5);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(HashTest, Mix64Avalanches) {
  // Single-bit input flips must change roughly half the output bits.
  uint64_t base = HashMix64(0x1234567890abcdefULL);
  for (int bit = 0; bit < 64; ++bit) {
    uint64_t flipped = HashMix64(0x1234567890abcdefULL ^ (1ULL << bit));
    int diff = __builtin_popcountll(base ^ flipped);
    EXPECT_GT(diff, 12) << "bit " << bit;
    EXPECT_LT(diff, 52) << "bit " << bit;
  }
}

TEST(HashTest, CombineIsOrderSensitive) {
  size_t ab = HashCombine(HashCombine(0, 17), 42);
  size_t ba = HashCombine(HashCombine(0, 42), 17);
  EXPECT_NE(ab, ba);
}

TEST(HashTest, CombineDispersesLowBitsOfHighBitInputs) {
  // Collision-shape regression for the old `h ^= e; h *= prime` fold:
  // that fold is closed under mod 2^k, so element hashes that agree in
  // their low k bits produce combined hashes that agree in their low k
  // bits — and unordered_map bucket indices are exactly those low bits.
  // Feed 256 elements that are identical mod 2^16 and require the
  // combined hashes to scatter mod 2^16 anyway.
  std::set<size_t> low_bits;
  for (uint64_t i = 0; i < 256; ++i) {
    size_t h = HashCombine(0, static_cast<size_t>(0xbeefULL | (i << 32)));
    low_bits.insert(h & 0xffff);
  }
  EXPECT_GT(low_bits.size(), 250u);
}

TEST(TimerTest, MeasuresNonNegative) {
  Timer t;
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_GE(t.Millis(), 0.0);
  t.Reset();
  EXPECT_GE(t.Seconds(), 0.0);
}

TEST(LoggingTest, LevelRoundTrips) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(old);
}

TEST(LoggingTest, ParseLogLevelAcceptsKnownNames) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));  // case-insensitive
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST(LoggingTest, ParseLogLevelRejectsUnknownNames) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("loud", &level));
  EXPECT_FALSE(ParseLogLevel("debugx", &level));
  EXPECT_EQ(level, LogLevel::kInfo);  // untouched on failure
}

TEST(LoggingTest, LogLevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace ftrepair
