// Columnar-path equivalence suite.
//
// The dictionary-code fast paths (code-keyed pattern grouping,
// code-bucketed exact joins, per-pair distance memoization) are purely
// a speed layer: RepairOptions::columnar on/off must produce
// bit-identical repairs at every thread count, on every corpus, under
// every solver. The differential tests here fingerprint the *entire*
// RepairResult (repaired table bytes, change list, cost, stats) and
// compare fingerprints across the full {columnar} x {threads} x
// {algorithm} grid.
//
// Alongside: the dictionary invariants the equivalence argument rests
// on (interning is a bijection, codes are deterministic, null is code
// 0 — see PERFORMANCE.md "Dictionary-join equivalence"), and the
// streaming-ingest memory contract (peak charge tracks distinct values
// + codes, never a second copy of the text).

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/resource.h"
#include "common/strings.h"
#include "constraint/fd_parser.h"
#include "core/repairer.h"
#include "data/csv.h"
#include "gen/error_injector.h"
#include "gen/hosp_gen.h"
#include "gen/tax_gen.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;
using testing_util::RandomFDTable;

// Byte-level fingerprint of everything a repair produced. Two runs
// with equal fingerprints made the same decisions everywhere.
std::string Fingerprint(const RepairResult& result) {
  std::string fp = WriteCsvString(result.repaired);
  fp += "|changes:";
  for (const CellChange& c : result.changes) {
    fp += std::to_string(c.row) + "," + std::to_string(c.col) + ":" +
          c.old_value.ToString() + "->" + c.new_value.ToString() + ";";
  }
  fp += "|cost:" + FormatDouble(result.stats.repair_cost);
  fp += "|cells:" + std::to_string(result.stats.cells_changed);
  fp += "|tuples:" + std::to_string(result.stats.tuples_changed);
  fp += "|before:" + std::to_string(result.stats.ft_violations_before);
  fp += "|after:" + std::to_string(result.stats.ft_violations_after);
  return fp;
}

// Runs the {columnar on, columnar off} x {1, 2, 4, 8 threads} grid for
// one (table, fds, algorithm) instance and asserts one fingerprint.
void ExpectColumnarInvariant(const Table& table, const std::vector<FD>& fds,
                             RepairAlgorithm algorithm, double tau) {
  std::string reference;
  for (bool columnar : {true, false}) {
    for (int threads : {1, 2, 4, 8}) {
      RepairOptions options;
      options.algorithm = algorithm;
      options.default_tau = tau;
      options.threads = threads;
      options.columnar = columnar;
      auto result = Repairer(options).Repair(table, fds);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      std::string fp = Fingerprint(result.value());
      if (reference.empty()) {
        reference = fp;
      } else {
        ASSERT_EQ(fp, reference)
            << "columnar=" << columnar << " threads=" << threads;
      }
    }
  }
}

// A numeric-heavy corpus: number-typed FD attributes exercise the
// tostring render classes of the coded bucket join (number 5 and
// string "5" render identically) and the memoized Euclidean distances.
Table NumericZipTable() {
  Table t(Schema({{"zip", ValueType::kNumber},
                  {"city", ValueType::kString},
                  {"rate", ValueType::kNumber}}));
  auto add = [&t](double zip, const std::string& city, double rate) {
    (void)t.AppendRow({Value(zip), Value(city), Value(rate)});
  };
  for (int i = 0; i < 12; ++i) add(2130, "Boston", 6.25);
  for (int i = 0; i < 10; ++i) add(10001, "New York", 8.875);
  add(2130, "Bostn", 6.25);    // typo city under a clean zip
  add(2130, "Boston", 6.5);    // off rate under a clean zip
  add(2131, "Boston", 6.25);   // near-miss zip
  add(10001, "New York", 8.0); // off rate
  return t;
}

TEST(ColumnarDifferentialTest, CitizensAllSolversAllThreadCounts) {
  Table t = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(t.schema());
  for (RepairAlgorithm algorithm :
       {RepairAlgorithm::kExact, RepairAlgorithm::kGreedy,
        RepairAlgorithm::kApproJoin}) {
    ExpectColumnarInvariant(t, fds, algorithm, 0.4);
  }
}

TEST(ColumnarDifferentialTest, NumericZipAllSolvers) {
  Table t = NumericZipTable();
  auto fds = std::move(ParseFDList("z2c: zip -> city\nz2r: zip -> rate\n",
                                   t.schema()))
                 .ValueOrDie();
  for (RepairAlgorithm algorithm :
       {RepairAlgorithm::kExact, RepairAlgorithm::kGreedy,
        RepairAlgorithm::kApproJoin}) {
    ExpectColumnarInvariant(t, fds, algorithm, 0.4);
  }
}

TEST(ColumnarDifferentialTest, SmallRandomExact) {
  Table t = RandomFDTable(40, 3, 5, 10, /*seed=*/21);
  auto fds = std::move(ParseFDList("f1: c0 -> c1\nf2: c0 -> c2\n",
                                   t.schema()))
                 .ValueOrDie();
  ExpectColumnarInvariant(t, fds, RepairAlgorithm::kExact, 0.35);
}

TEST(ColumnarDifferentialTest, RandomCorporaGreedyAndAppro) {
  struct Instance {
    int rows, cols, keys, flips;
    uint64_t seed;
  };
  for (const Instance& inst : {Instance{200, 4, 12, 30, 3},
                               Instance{120, 3, 6, 50, 17},
                               Instance{300, 4, 25, 40, 29}}) {
    Table t = RandomFDTable(inst.rows, inst.cols, inst.keys, inst.flips,
                            inst.seed);
    std::string spec = "f1: c0 -> c1\nf2: c0 -> c2\n";
    if (inst.cols > 3) spec += "f3: c3 -> c1\n";
    auto fds = std::move(ParseFDList(spec, t.schema())).ValueOrDie();
    for (RepairAlgorithm algorithm :
         {RepairAlgorithm::kGreedy, RepairAlgorithm::kApproJoin}) {
      ExpectColumnarInvariant(t, fds, algorithm, 0.35);
    }
  }
}

// Dirty slice of a generated dataset, with the generator-recommended
// taus/weights folded into options by the caller via TauFor defaults.
Table DirtySlice(const Dataset& dataset, int rows) {
  NoiseOptions noise;
  noise.error_rate = 0.04;
  Table dirty =
      std::move(InjectErrors(dataset.clean, dataset.fds, noise, nullptr))
          .ValueOrDie();
  return dirty.Head(rows);
}

void ExpectColumnarInvariantOnDataset(const Dataset& dataset, int rows,
                                      RepairAlgorithm algorithm) {
  Table dirty = DirtySlice(dataset, rows);
  std::string reference;
  for (bool columnar : {true, false}) {
    for (int threads : {1, 2, 4, 8}) {
      RepairOptions options;
      options.algorithm = algorithm;
      options.w_l = dataset.recommended_w_l;
      options.w_r = dataset.recommended_w_r;
      options.tau_by_fd = dataset.recommended_tau;
      options.threads = threads;
      options.columnar = columnar;
      auto result = Repairer(options).Repair(dirty, dataset.fds);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      std::string fp = Fingerprint(result.value());
      if (reference.empty()) {
        reference = fp;
      } else {
        ASSERT_EQ(fp, reference) << dataset.name << " columnar=" << columnar
                                 << " threads=" << threads;
      }
    }
  }
}

TEST(ColumnarDifferentialTest, HospGreedyAndAppro) {
  Dataset hosp =
      std::move(GenerateHosp({.num_rows = 600, .seed = 7})).ValueOrDie();
  ExpectColumnarInvariantOnDataset(hosp, 600, RepairAlgorithm::kGreedy);
  ExpectColumnarInvariantOnDataset(hosp, 600, RepairAlgorithm::kApproJoin);
}

TEST(ColumnarDifferentialTest, TaxGreedyAndAppro) {
  Dataset tax =
      std::move(GenerateTax({.num_rows = 500, .seed = 11})).ValueOrDie();
  ExpectColumnarInvariantOnDataset(tax, 500, RepairAlgorithm::kGreedy);
  ExpectColumnarInvariantOnDataset(tax, 500, RepairAlgorithm::kApproJoin);
}

TEST(ColumnarDifferentialTest, TauZeroUsesCodedBucketJoin) {
  // tau = 0 routes candidate generation through the exact bucket join,
  // which is the code-keyed path under columnar=on.
  Table t = RandomFDTable(150, 3, 10, 25, /*seed=*/41);
  auto fds =
      std::move(ParseFDList("f1: c0 -> c1\n", t.schema())).ValueOrDie();
  ExpectColumnarInvariant(t, fds, RepairAlgorithm::kGreedy, 0.0);
}

// ---- Dictionary invariants ----

TEST(DictionaryInvariantTest, InterningIsABijection) {
  Table t = CitizensDirty();
  for (int c = 0; c < t.num_columns(); ++c) {
    for (int r1 = 0; r1 < t.num_rows(); ++r1) {
      // Decode(encode) is the identity.
      EXPECT_EQ(t.dictionary(c).value(t.code(r1, c)), t.cell(r1, c));
      for (int r2 = r1 + 1; r2 < t.num_rows(); ++r2) {
        // Equal cells <=> equal codes, per column.
        EXPECT_EQ(t.code(r1, c) == t.code(r2, c),
                  t.cell(r1, c) == t.cell(r2, c))
            << "col " << c << " rows " << r1 << "," << r2;
      }
    }
  }
}

TEST(DictionaryInvariantTest, CodesAreDeterministic) {
  // The same cell sequence always assigns the same codes, whether it
  // arrives via AppendRow or via the streaming CSV reader.
  Table appended = CitizensDirty();
  Table parsed =
      std::move(ReadCsvString(WriteCsvString(appended))).ValueOrDie();
  ASSERT_EQ(parsed.num_rows(), appended.num_rows());
  for (int r = 0; r < appended.num_rows(); ++r) {
    for (int c = 0; c < appended.num_columns(); ++c) {
      EXPECT_EQ(parsed.code(r, c), appended.code(r, c))
          << "r=" << r << " c=" << c;
    }
  }
}

TEST(DictionaryInvariantTest, NullIsCodeZero) {
  Table t = std::move(ReadCsvString("a,b\n1,\n,x\n")).ValueOrDie();
  EXPECT_EQ(t.code(0, 1), ColumnDictionary::kNullCode);
  EXPECT_EQ(t.code(1, 0), ColumnDictionary::kNullCode);
  EXPECT_TRUE(t.cell(0, 1).is_null());
  EXPECT_NE(t.code(0, 0), ColumnDictionary::kNullCode);
}

TEST(DictionaryInvariantTest, SetCellInternsNewValuesConsistently) {
  Table t = CitizensDirty();
  t.SetCell(0, 3, Value("Boston"));
  // The new cell shares the code of every other "Boston" in the column.
  int boston_row = -1;
  for (int r = 1; r < t.num_rows(); ++r) {
    if (t.cell(r, 3) == Value("Boston")) {
      boston_row = r;
      break;
    }
  }
  ASSERT_GE(boston_row, 0);
  EXPECT_EQ(t.code(0, 3), t.code(boston_row, 3));
}

TEST(DictionaryInvariantTest, FromColumnsValidates) {
  Schema schema({{"a", ValueType::kString}});
  {
    // Arity mismatch: two code columns for a one-column schema.
    std::vector<ColumnDictionary> dicts(2);
    std::vector<std::vector<uint32_t>> codes{{0}, {0}};
    EXPECT_FALSE(Table::FromColumns(schema, std::move(dicts),
                                    std::move(codes))
                     .ok());
  }
  {
    // Ragged code vectors.
    Schema two({{"a", ValueType::kString}, {"b", ValueType::kString}});
    std::vector<ColumnDictionary> dicts(2);
    std::vector<std::vector<uint32_t>> codes{{0, 0}, {0}};
    EXPECT_FALSE(
        Table::FromColumns(two, std::move(dicts), std::move(codes)).ok());
  }
  {
    // Out-of-range code.
    std::vector<ColumnDictionary> dicts(1);
    std::vector<std::vector<uint32_t>> codes{{5}};
    EXPECT_FALSE(Table::FromColumns(schema, std::move(dicts),
                                    std::move(codes))
                     .ok());
  }
}

// ---- Streaming-ingest memory contract ----

TEST(StreamingIngestTest, PeakChargeIsBelowOneTextCopy) {
  // Repetitive data with wide cells: the old reader charged the whole
  // text up front; the streaming reader charges distinct dictionary
  // entries + one 4-byte code per cell, far below the text size.
  std::string text = "alpha,beta,gamma,delta\n";
  const std::string wide(60, 'x');
  for (int r = 0; r < 500; ++r) {
    std::string row;
    for (int c = 0; c < 4; ++c) {
      if (c > 0) row += ',';
      row += wide + std::to_string(r % 7);
    }
    text += row + "\n";
  }
  MemoryBudget memory;
  CsvOptions options;
  options.memory = &memory;
  auto result = ReadCsvString(text, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().num_rows(), 500);
  EXPECT_LT(memory.peak_bytes(), text.size() / 2);
  EXPECT_GT(memory.peak_bytes(), 0u);
}

TEST(StreamingIngestTest, FileReadChargesOnlyChunkAndDictionaries) {
  std::string path = ::testing::TempDir() + "/ftrepair_columnar_mem.csv";
  {
    Table big(Schema({{"k", ValueType::kString}, {"v", ValueType::kString}}));
    const std::string wide(80, 'y');
    for (int r = 0; r < 400; ++r) {
      ASSERT_TRUE(
          big.AppendRow({Value(wide + std::to_string(r % 5)), Value(wide)})
              .ok());
    }
    ASSERT_TRUE(WriteCsvFile(big, path).ok());
  }
  MemoryBudget memory;
  CsvOptions options;
  options.memory = &memory;
  options.chunk_bytes = 4 * 1024;
  auto result = ReadCsvFile(path, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().num_rows(), 400);
  // ~65k of text on disk; the read holds one 4k chunk + tiny
  // dictionaries + 400 * 2 codes.
  EXPECT_LT(memory.peak_bytes(), 20u * 1024u);
  std::remove(path.c_str());
}

TEST(StreamingIngestTest, ExhaustionMidStreamIsCleanAndNamed) {
  // Every row distinct: dictionary charges accrue until the budget
  // trips mid-stream, which must surface as ResourceExhausted naming
  // the ingest site — not a crash, not a partial table.
  std::string text = "a,b\n";
  for (int r = 0; r < 2000; ++r) {
    text += "u" + std::to_string(r) + ",w" + std::to_string(r) + "\n";
  }
  MemoryBudget memory(8 * 1024);
  CsvOptions options;
  options.memory = &memory;
  auto result = ReadCsvString(text, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
  EXPECT_NE(result.status().message().find("csv ingest"), std::string::npos);
}

}  // namespace
}  // namespace ftrepair
