#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "detect/detector.h"
#include "gen/error_injector.h"
#include "gen/hosp_gen.h"
#include "gen/pools.h"
#include "gen/tax_gen.h"
#include "metric/distance.h"

namespace ftrepair {
namespace {

double PoolFloor(const std::vector<std::string>& pool) {
  double floor = 1.0;
  for (size_t i = 0; i < pool.size(); ++i) {
    for (size_t j = i + 1; j < pool.size(); ++j) {
      floor = std::min(floor, NormalizedEditDistance(pool[i], pool[j]));
    }
  }
  return floor;
}

TEST(PoolsTest, CuratedSeparationFloors) {
  // These floors underwrite the datasets' recommended taus.
  EXPECT_GE(PoolFloor(StateNamePool()), 0.61);
  EXPECT_GE(PoolFloor(CityNamePool()), 0.62);
  std::vector<std::string> names = FirstNamePoolMale();
  names.insert(names.end(), FirstNamePoolFemale().begin(),
               FirstNamePoolFemale().end());
  EXPECT_GE(PoolFloor(names), 0.70);
}

TEST(PoolsTest, DistinctCodesRespectMinDistance) {
  Rng rng(3);
  std::vector<std::string> codes = MakeDistinctDigitCodes(&rng, 40, 6, 4);
  ASSERT_EQ(codes.size(), 40u);
  for (size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(codes[i].size(), 6u);
    for (size_t j = i + 1; j < codes.size(); ++j) {
      EXPECT_GE(EditDistance(codes[i], codes[j]), 4u)
          << codes[i] << " vs " << codes[j];
    }
  }
}

class DatasetTest : public ::testing::TestWithParam<bool> {
 protected:
  Dataset Generate(int rows, uint64_t seed) {
    if (GetParam()) {
      return std::move(GenerateHosp({.num_rows = rows, .seed = seed}))
          .ValueOrDie();
    }
    return std::move(GenerateTax({.num_rows = rows, .seed = seed}))
        .ValueOrDie();
  }
};

TEST_P(DatasetTest, ShapeMatchesPaper) {
  Dataset ds = Generate(500, 7);
  EXPECT_EQ(ds.clean.num_rows(), 500);
  EXPECT_EQ(ds.fds.size(), 9u);  // 9 FDs on both datasets (§6.1)
  if (GetParam()) {
    EXPECT_EQ(ds.name, "HOSP");
    EXPECT_EQ(ds.clean.num_columns(), 19);
  } else {
    EXPECT_EQ(ds.name, "Tax");
    EXPECT_EQ(ds.clean.num_columns(), 15);
  }
  EXPECT_EQ(ds.recommended_tau.size(), 9u);
  for (const FD& fd : ds.fds) {
    EXPECT_TRUE(ds.recommended_tau.count(fd.name())) << fd.name();
  }
}

TEST_P(DatasetTest, CleanDataSatisfiesAllFDs) {
  Dataset ds = Generate(800, 11);
  EXPECT_TRUE(IsConsistent(ds.clean, ds.fds));
}

TEST_P(DatasetTest, CleanDataHasZeroFTViolationsAtRecommendedTaus) {
  // The separation property: the value pools keep every legitimate
  // pattern pair above tau, so FT-detection on clean data is silent.
  Dataset ds = Generate(800, 13);
  DistanceModel model(ds.clean);
  for (const FD& fd : ds.fds) {
    FTOptions opts{ds.recommended_w_l, ds.recommended_w_r,
                   ds.recommended_tau.at(fd.name())};
    EXPECT_EQ(CountFTViolations(ds.clean, fd, model, opts), 0u)
        << fd.name();
  }
}

TEST_P(DatasetTest, DeterministicBySeed) {
  Dataset a = Generate(200, 21);
  Dataset b = Generate(200, 21);
  Dataset c = Generate(200, 22);
  for (int r = 0; r < a.clean.num_rows(); ++r) {
    for (int col = 0; col < a.clean.num_columns(); ++col) {
      ASSERT_EQ(a.clean.cell(r, col), b.clean.cell(r, col));
    }
  }
  bool differs = false;
  for (int r = 0; r < a.clean.num_rows() && !differs; ++r) {
    for (int col = 0; col < a.clean.num_columns() && !differs; ++col) {
      differs = a.clean.cell(r, col) != c.clean.cell(r, col);
    }
  }
  EXPECT_TRUE(differs);
}

TEST_P(DatasetTest, RejectsNonPositiveRows) {
  if (GetParam()) {
    EXPECT_FALSE(GenerateHosp({.num_rows = 0}).ok());
  } else {
    EXPECT_FALSE(GenerateTax({.num_rows = 0}).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(HospAndTax, DatasetTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Hosp" : "Tax";
                         });

TEST(ErrorInjectorTest, BudgetAccounting) {
  Dataset ds = std::move(GenerateHosp({.num_rows = 1000, .seed = 3}))
                   .ValueOrDie();
  NoiseOptions noise;
  noise.error_rate = 0.05;
  noise.seed = 9;
  NoiseReport report;
  Table dirty =
      std::move(InjectErrors(ds.clean, ds.fds, noise, &report)).ValueOrDie();
  // FD columns of HOSP: union of all attrs.
  std::set<int> fd_cols;
  for (const FD& fd : ds.fds) {
    fd_cols.insert(fd.attrs().begin(), fd.attrs().end());
  }
  int budget = static_cast<int>(
      std::llround(0.05 * 1000 * static_cast<int>(fd_cols.size())));
  EXPECT_EQ(report.cells_dirtied, budget);
  EXPECT_NEAR(report.lhs_errors, budget / 3.0, budget * 0.05 + 2);
  EXPECT_NEAR(report.rhs_errors, budget / 3.0, budget * 0.05 + 2);
  EXPECT_NEAR(report.typos, budget / 3.0, budget * 0.05 + 2);
  // Exactly `budget` cells differ, all within FD columns.
  int diff = 0;
  for (int r = 0; r < dirty.num_rows(); ++r) {
    for (int c = 0; c < dirty.num_columns(); ++c) {
      if (dirty.cell(r, c) != ds.clean.cell(r, c)) {
        ++diff;
        EXPECT_TRUE(fd_cols.count(c)) << "non-FD column dirtied: " << c;
      }
    }
  }
  EXPECT_EQ(diff, report.cells_dirtied);
}

TEST(ErrorInjectorTest, ZeroRateLeavesTableClean) {
  Dataset ds = std::move(GenerateTax({.num_rows = 100, .seed = 3}))
                   .ValueOrDie();
  NoiseOptions noise;
  noise.error_rate = 0.0;
  Table dirty =
      std::move(InjectErrors(ds.clean, ds.fds, noise, nullptr)).ValueOrDie();
  for (int r = 0; r < dirty.num_rows(); ++r) {
    for (int c = 0; c < dirty.num_columns(); ++c) {
      ASSERT_EQ(dirty.cell(r, c), ds.clean.cell(r, c));
    }
  }
}

TEST(ErrorInjectorTest, InvalidOptionsRejected) {
  Dataset ds =
      std::move(GenerateTax({.num_rows = 50, .seed = 3})).ValueOrDie();
  NoiseOptions noise;
  noise.error_rate = 1.5;
  EXPECT_FALSE(InjectErrors(ds.clean, ds.fds, noise, nullptr).ok());
  noise.error_rate = 0.1;
  noise.lhs_fraction = noise.rhs_fraction = noise.typo_fraction = 0;
  EXPECT_FALSE(InjectErrors(ds.clean, ds.fds, noise, nullptr).ok());
  EXPECT_FALSE(InjectErrors(ds.clean, {}, NoiseOptions{}, nullptr).ok());
}

TEST(ErrorInjectorTest, DeterministicBySeed) {
  Dataset ds =
      std::move(GenerateTax({.num_rows = 300, .seed = 3})).ValueOrDie();
  NoiseOptions noise;
  noise.error_rate = 0.04;
  noise.seed = 77;
  Table a = std::move(InjectErrors(ds.clean, ds.fds, noise, nullptr))
                .ValueOrDie();
  Table b = std::move(InjectErrors(ds.clean, ds.fds, noise, nullptr))
                .ValueOrDie();
  for (int r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_columns(); ++c) {
      ASSERT_EQ(a.cell(r, c), b.cell(r, c));
    }
  }
}

TEST(MakeTypoTest, AlwaysChangesTheValue) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    Value s("Boston");
    Value typo = MakeTypo(s, &rng);
    EXPECT_NE(typo, s);
    Value n(42.0);
    Value ntypo = MakeTypo(n, &rng);
    EXPECT_NE(ntypo, n);
  }
  // Degenerate inputs still change.
  EXPECT_NE(MakeTypo(Value(""), &rng), Value(""));
}

TEST(MakeTypoTest, StringTyposStayClose) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    Value typo = MakeTypo(Value("Sacramento"), &rng);
    ASSERT_TRUE(typo.is_string());
    EXPECT_LE(EditDistance("Sacramento", typo.str()), 2u);
  }
}

}  // namespace
}  // namespace ftrepair
