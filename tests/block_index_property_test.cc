// Seeded property/fuzz harness for the blocking candidate index
// (detect/block_index.h). Over 1000+ random tables — small alphabets,
// adversarial near-threshold strings built by applying exactly k edits
// around the filter bound, mixed nulls and numbers — it asserts:
//
//   * soundness: every pattern pair whose exact ProjDistance is <= tau
//     (a brute-force oracle, no filters) appears as a blocked edge;
//   * equality: the blocked edge set equals the all-pairs edge set;
//   * accounting: verified <= generated <= n*(n-1)/2 and
//     generated = filtered + verified, in every mode;
//   * determinism: thread counts and scratch reuse never change the
//     graph.
//
// Each TEST iterates many seeds so the whole file sweeps well over the
// 1000-table floor while any failure prints the seed that caused it.

#include <algorithm>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "common/rng.h"
#include "data/schema.h"
#include "data/table.h"
#include "detect/block_index.h"
#include "detect/pattern.h"
#include "detect/violation_graph.h"
#include "test_util.h"

namespace ftrepair {
namespace {

// --- random-table machinery ------------------------------------------

// A tiny alphabet maximizes gram collisions, stressing the multiset
// (min-count) semantics of the shared-gram filter.
constexpr char kAlphabet[] = "ab01";
constexpr int kAlphabetSize = 4;

std::string RandomString(Rng* rng, int min_len, int max_len) {
  int len = min_len + static_cast<int>(rng->Uniform(
                          static_cast<uint64_t>(max_len - min_len + 1)));
  std::string s;
  s.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng->Uniform(kAlphabetSize)]);
  }
  return s;
}

// Applies exactly `edits` random single-character edits. Combined with
// taus chosen so the per-attribute bound k sits near `edits`, this
// plants pairs exactly on both sides of every filter threshold.
std::string Mutate(Rng* rng, std::string s, int edits) {
  for (int e = 0; e < edits; ++e) {
    uint64_t op = rng->Uniform(3);
    size_t pos =
        s.empty() ? 0 : static_cast<size_t>(rng->Uniform(s.size() + 1));
    char c = kAlphabet[rng->Uniform(kAlphabetSize)];
    if (op == 0 && !s.empty() && pos < s.size()) {
      s[pos] = c;  // substitute
    } else if (op == 1 && !s.empty() && pos < s.size()) {
      s.erase(pos, 1);  // delete
    } else {
      s.insert(pos, 1, c);  // insert
    }
  }
  return s;
}

struct TableConfig {
  int rows = 36;
  int num_bases = 6;          // distinct base strings per column
  int max_edits = 3;          // adversarial mutation depth
  double null_fraction = 0;   // chance a cell is null
  double number_fraction = 0; // chance a cell is numeric
};

// col0 -> col1 FD over adversarially clustered strings.
Table RandomAdversarialTable(uint64_t seed, const TableConfig& cfg) {
  Rng rng(seed);
  Schema schema({{"A", ValueType::kString}, {"B", ValueType::kString}});
  std::vector<std::string> bases_a, bases_b;
  for (int i = 0; i < cfg.num_bases; ++i) {
    bases_a.push_back(RandomString(&rng, 3, 8));
    bases_b.push_back(RandomString(&rng, 3, 8));
  }
  Table t(schema);
  for (int r = 0; r < cfg.rows; ++r) {
    Row row;
    for (const auto* bases : {&bases_a, &bases_b}) {
      double roll = rng.UniformDouble();
      if (roll < cfg.null_fraction) {
        row.push_back(Value());
      } else if (roll < cfg.null_fraction + cfg.number_fraction) {
        row.push_back(Value(static_cast<double>(rng.Uniform(20))));
      } else {
        const std::string& base =
            (*bases)[rng.Uniform(static_cast<uint64_t>(bases->size()))];
        int edits = static_cast<int>(
            rng.Uniform(static_cast<uint64_t>(cfg.max_edits + 1)));
        row.push_back(Value(Mutate(&rng, base, edits)));
      }
    }
    EXPECT_TRUE(t.AppendRow(std::move(row)).ok());
  }
  return t;
}

// --- oracle + fingerprints -------------------------------------------

std::set<std::pair<int, int>> EdgeSet(const ViolationGraph& g) {
  std::set<std::pair<int, int>> edges;
  for (int i = 0; i < g.num_patterns(); ++i) {
    for (const ViolationGraph::Edge& e : g.Neighbors(i)) {
      edges.emplace(std::min(i, e.to), std::max(i, e.to));
    }
  }
  return edges;
}

// Brute force, no filters, exact ProjDistance: the ground truth the
// index filters must never dip below.
std::set<std::pair<int, int>> OracleEdges(const std::vector<Pattern>& patterns,
                                          const FD& fd,
                                          const DistanceModel& model,
                                          double w_l, double w_r,
                                          double tau) {
  std::set<std::pair<int, int>> edges;
  int n = static_cast<int>(patterns.size());
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const auto& a = patterns[static_cast<size_t>(i)].values;
      const auto& b = patterns[static_cast<size_t>(j)].values;
      if (a == b) continue;
      if (ViolationGraph::ProjDistance(a, b, fd, model, w_l, w_r) <= tau) {
        edges.emplace(i, j);
      }
    }
  }
  return edges;
}

std::string Fingerprint(const ViolationGraph& g) {
  std::ostringstream os;
  os << std::hexfloat << g.num_patterns() << "/" << g.num_edges() << "/"
     << g.truncated() << "|";
  for (int i = 0; i < g.num_patterns(); ++i) {
    for (const ViolationGraph::Edge& e : g.Neighbors(i)) {
      os << i << ":" << e.to << ":" << e.proj_dist << ":" << e.unit_cost
         << ";";
    }
  }
  return os.str();
}

void CheckInvariants(const ViolationGraph& g, uint64_t seed) {
  uint64_t n = static_cast<uint64_t>(g.num_patterns());
  EXPECT_LE(g.candidates_verified(), g.candidates_generated())
      << "seed=" << seed;
  EXPECT_LE(g.candidates_generated(), n * (n > 0 ? n - 1 : 0) / 2)
      << "seed=" << seed;
  EXPECT_EQ(g.candidates_generated(),
            g.candidates_filtered() + g.candidates_verified())
      << "seed=" << seed;
}

// One full property check of a (table, w, tau) instance.
void CheckInstance(const Table& t, const DistanceModel& model, double w_l,
                   double w_r, double tau, uint64_t seed) {
  FD fd = std::move(FD::Make({0}, {1}, "p")).ValueOrDie();
  std::vector<Pattern> patterns = BuildPatterns(t, fd.attrs());
  ViolationGraph all = ViolationGraph::Build(
      patterns, fd, model, FTOptions{w_l, w_r, tau, 1,
                                     DetectIndexMode::kAllPairs});
  ViolationGraph blocked = ViolationGraph::Build(
      patterns, fd, model, FTOptions{w_l, w_r, tau, 1,
                                     DetectIndexMode::kBlocked});
  // Bit-identical graphs, and both agree with the filter-free oracle.
  EXPECT_EQ(Fingerprint(all), Fingerprint(blocked))
      << "seed=" << seed << " tau=" << tau << " w_l=" << w_l;
  std::set<std::pair<int, int>> oracle =
      OracleEdges(patterns, fd, model, w_l, w_r, tau);
  EXPECT_EQ(EdgeSet(blocked), oracle) << "seed=" << seed << " tau=" << tau;
  CheckInvariants(all, seed);
  CheckInvariants(blocked, seed);
  EXPECT_LE(blocked.candidates_generated(), all.candidates_generated())
      << "seed=" << seed;
}

const double kTaus[] = {0.0, 0.1, 0.25, 0.5};
const std::pair<double, double> kWeights[] = {
    {1.0, 0.0}, {0.5, 0.5}, {0.3, 0.7}};

// --- the properties ---------------------------------------------------

TEST(BlockIndexPropertyTest, AdversarialStringsSoundAndIdentical) {
  // 150 tables x 4 taus x 3 weights = 1800 instances of pure
  // near-threshold string data.
  TableConfig cfg;
  for (uint64_t seed = 1; seed <= 150; ++seed) {
    Table t = RandomAdversarialTable(seed, cfg);
    DistanceModel model(t);
    for (double tau : kTaus) {
      for (const auto& w : kWeights) {
        CheckInstance(t, model, w.first, w.second, tau, seed);
      }
    }
  }
}

TEST(BlockIndexPropertyTest, NullsAndNumbersSoundAndIdentical) {
  // 150 tables x 12 instances with nulls (distance 1 to everything) and
  // numbers (Euclidean under kAuto — excluded from tau=0 exact keys).
  TableConfig cfg;
  cfg.null_fraction = 0.12;
  cfg.number_fraction = 0.15;
  for (uint64_t seed = 1000; seed < 1150; ++seed) {
    Table t = RandomAdversarialTable(seed, cfg);
    DistanceModel model(t);
    for (double tau : kTaus) {
      for (const auto& w : kWeights) {
        CheckInstance(t, model, w.first, w.second, tau, seed);
      }
    }
  }
}

TEST(BlockIndexPropertyTest, DeepMutationsNearFilterBound) {
  // Long strings + deep mutations so |len(a) - len(b)| brushes against
  // the length filter bound from both sides.
  TableConfig cfg;
  cfg.num_bases = 4;
  cfg.max_edits = 6;
  for (uint64_t seed = 2000; seed < 2120; ++seed) {
    Table t = RandomAdversarialTable(seed, cfg);
    DistanceModel model(t);
    for (double tau : {0.15, 0.35, 0.6}) {
      CheckInstance(t, model, 0.5, 0.5, tau, seed);
      CheckInstance(t, model, 0.3, 0.7, tau, seed);
    }
  }
}

TEST(BlockIndexPropertyTest, DiscreteMetricExactKeys) {
  // kDiscrete columns become exact keys at tau=0 and, when w > tau, at
  // tau > 0 too. 120 tables x 8 instances.
  TableConfig cfg;
  cfg.null_fraction = 0.1;
  for (uint64_t seed = 3000; seed < 3120; ++seed) {
    Table t = RandomAdversarialTable(seed, cfg);
    DistanceModel model(t);
    model.SetColumnMetric(0, ColumnMetric::kDiscrete);
    for (double tau : kTaus) {
      CheckInstance(t, model, 0.6, 0.4, tau, seed);
      CheckInstance(t, model, 0.2, 0.8, tau, seed);
    }
  }
}

TEST(BlockIndexPropertyTest, EditMetricForcedOnMixedData) {
  // kEdit compares ToString forms, so numbers join the gram/key paths.
  TableConfig cfg;
  cfg.number_fraction = 0.3;
  cfg.null_fraction = 0.05;
  for (uint64_t seed = 4000; seed < 4120; ++seed) {
    Table t = RandomAdversarialTable(seed, cfg);
    DistanceModel model(t);
    model.SetColumnMetric(0, ColumnMetric::kEdit);
    model.SetColumnMetric(1, ColumnMetric::kEdit);
    for (double tau : kTaus) {
      CheckInstance(t, model, 0.5, 0.5, tau, seed);
    }
  }
}

TEST(BlockIndexPropertyTest, UnfilterableMetricsDegradeSoundly) {
  // Jaccard / q-gram-cosine columns admit no sound filter; a forced
  // kBlocked build must still be identical (via the degenerate or
  // filter-free paths), just unselective.
  TableConfig cfg;
  cfg.rows = 24;
  for (uint64_t seed = 5000; seed < 5100; ++seed) {
    Table t = RandomAdversarialTable(seed, cfg);
    DistanceModel model(t);
    model.SetColumnMetric(0, seed % 2 == 0 ? ColumnMetric::kJaccard
                                           : ColumnMetric::kQGramCosine);
    model.SetColumnMetric(1, ColumnMetric::kJaroWinkler);
    for (double tau : {0.0, 0.3}) {
      CheckInstance(t, model, 0.5, 0.5, tau, seed);
    }
  }
}

TEST(BlockIndexPropertyTest, ExtremeWeightsAndTinyTau) {
  // Degenerate weights (all mass on one side) and taus near the float
  // rounding edge of the k_max fix-up loops.
  TableConfig cfg;
  for (uint64_t seed = 6000; seed < 6100; ++seed) {
    Table t = RandomAdversarialTable(seed, cfg);
    DistanceModel model(t);
    for (double tau : {1e-9, 0.01, 0.999}) {
      CheckInstance(t, model, 1.0, 0.0, tau, seed);
      CheckInstance(t, model, 0.0, 1.0, tau, seed);
      CheckInstance(t, model, 1e-3, 1.0 - 1e-3, tau, seed);
    }
  }
}

TEST(BlockIndexPropertyTest, ThreadedBlockedBuildsBitIdentical) {
  TableConfig cfg;
  cfg.rows = 48;
  for (uint64_t seed = 7000; seed < 7060; ++seed) {
    Table t = RandomAdversarialTable(seed, cfg);
    DistanceModel model(t);
    FD fd = std::move(FD::Make({0}, {1}, "p")).ValueOrDie();
    std::vector<Pattern> patterns = BuildPatterns(t, fd.attrs());
    std::string want = Fingerprint(ViolationGraph::Build(
        patterns, fd, model,
        FTOptions{0.5, 0.5, 0.3, 1, DetectIndexMode::kAllPairs}));
    for (int threads : {2, 4}) {
      ViolationGraph g = ViolationGraph::Build(
          patterns, fd, model,
          FTOptions{0.5, 0.5, 0.3, threads, DetectIndexMode::kBlocked});
      EXPECT_EQ(want, Fingerprint(g)) << "seed=" << seed
                                      << " threads=" << threads;
      CheckInvariants(g, seed);
    }
  }
}

TEST(BlockIndexPropertyTest, ScratchReuseIsDeterministic) {
  // AppendCandidates through one shared Scratch across many anchors
  // and rebuilt indexes must replay identically.
  TableConfig cfg;
  for (uint64_t seed = 8000; seed < 8050; ++seed) {
    Table t = RandomAdversarialTable(seed, cfg);
    DistanceModel model(t);
    FD fd = std::move(FD::Make({0}, {1}, "p")).ValueOrDie();
    std::vector<Pattern> patterns = BuildPatterns(t, fd.attrs());
    FTOptions opts{0.5, 0.5, 0.3, 1, DetectIndexMode::kBlocked};
    BlockIndex index(patterns, fd, model, opts);
    BlockIndex::Scratch scratch;
    std::vector<std::vector<int>> first;
    for (int i = 0; i < static_cast<int>(patterns.size()); ++i) {
      std::vector<int> cand;
      index.AppendCandidates(i, &scratch, &cand);
      // Candidates must arrive strictly ascending and strictly past i.
      for (size_t k = 0; k < cand.size(); ++k) {
        EXPECT_GT(cand[k], i) << "seed=" << seed;
        if (k > 0) {
          EXPECT_GT(cand[k], cand[k - 1]) << "seed=" << seed;
        }
      }
      first.push_back(std::move(cand));
    }
    BlockIndex again(patterns, fd, model, opts);
    for (int i = 0; i < static_cast<int>(patterns.size()); ++i) {
      std::vector<int> cand;
      again.AppendCandidates(i, &scratch, &cand);
      EXPECT_EQ(cand, first[static_cast<size_t>(i)]) << "seed=" << seed;
    }
  }
}

TEST(BlockIndexPropertyTest, BudgetExhaustionStaysSound) {
  // Under an exhausting budget the blocked graph must flag truncation
  // and emit a subset of the oracle edges — never an invented edge.
  TableConfig cfg;
  cfg.rows = 48;
  for (uint64_t seed = 9000; seed < 9050; ++seed) {
    Table t = RandomAdversarialTable(seed, cfg);
    DistanceModel model(t);
    FD fd = std::move(FD::Make({0}, {1}, "p")).ValueOrDie();
    std::vector<Pattern> patterns = BuildPatterns(t, fd.attrs());
    std::set<std::pair<int, int>> oracle =
        OracleEdges(patterns, fd, model, 0.5, 0.5, 0.4);
    setenv("FTREPAIR_FAULT_BUDGET_UNITS", "30", 1);
    Budget budget(1e9);
    ViolationGraph g = ViolationGraph::Build(
        patterns, fd, model,
        FTOptions{0.5, 0.5, 0.4, 1, DetectIndexMode::kBlocked}, &budget);
    unsetenv("FTREPAIR_FAULT_BUDGET_UNITS");
    CheckInvariants(g, seed);
    std::set<std::pair<int, int>> got = EdgeSet(g);
    for (const auto& e : got) {
      EXPECT_TRUE(oracle.count(e))
          << "seed=" << seed << " invented edge " << e.first << "-"
          << e.second;
    }
    if (got.size() < oracle.size()) {
      EXPECT_TRUE(g.truncated());
    }
  }
}

TEST(BlockIndexPropertyTest, RandomFDTablesFromSharedHelper) {
  // The shared RandomFDTable generator (different value shapes: keyNN /
  // valNNcC strings) through the same full property check.
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    Table t = testing_util::RandomFDTable(50, 2, 7, 18, seed);
    DistanceModel model(t);
    for (double tau : kTaus) {
      CheckInstance(t, model, 0.5, 0.5, tau, seed);
    }
  }
}

}  // namespace
}  // namespace ftrepair
