// Provenance & explain suite: the cost ledger reconciles Eq. 4 exactly
// on every dataset x algorithm x thread count, the repair output is
// bit-identical with provenance on vs off, every explain report
// replay-verifies (including degraded and CFD runs), the audit stream
// is well-formed NDJSON in repair order, and the stats merge operators
// behave like the deterministic replay merge assumes (associative,
// commutative in the counters, order-preserving in the events).

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/json.h"
#include "common/resource.h"
#include "constraint/cfd.h"
#include "core/provenance.h"
#include "core/repairer.h"
#include "eval/explain_verify.h"
#include "gen/error_injector.h"
#include "gen/hosp_gen.h"
#include "gen/tax_gen.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;
using testing_util::CitizensTruth;

constexpr double kLedgerTolerance = 1e-9;

RepairOptions CitizensOptions(RepairAlgorithm algorithm) {
  RepairOptions options;
  options.algorithm = algorithm;
  options.tau_by_fd = {{"phi1", 0.30}, {"phi2", 0.5}, {"phi3", 0.5}};
  return options;
}

struct GeneratedCase {
  Table dirty;
  std::vector<FD> fds;
  RepairOptions options;
};

GeneratedCase MakeGenerated(bool hosp) {
  Dataset dataset =
      hosp ? std::move(GenerateHosp({.num_rows = 300, .seed = 7}))
                 .ValueOrDie()
           : std::move(GenerateTax({.num_rows = 300, .seed = 11}))
                 .ValueOrDie();
  NoiseOptions noise;
  noise.error_rate = 0.05;
  noise.seed = 42;
  GeneratedCase c{std::move(InjectErrors(dataset.clean, dataset.fds, noise,
                                         nullptr))
                      .ValueOrDie(),
                  dataset.fds,
                  {}};
  c.options.w_l = dataset.recommended_w_l;
  c.options.w_r = dataset.recommended_w_r;
  for (const auto& [name, tau] : dataset.recommended_tau) {
    c.options.tau_by_fd[name] = tau;
  }
  return c;
}

void ExpectLedgerReconciles(const Table& dirty, const std::vector<FD>& fds,
                            RepairOptions options) {
  options.provenance = true;
  Repairer repairer(options);
  auto result = repairer.Repair(dirty, fds);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const RepairProvenance& prov = result.value().provenance;
  ASSERT_TRUE(prov.enabled);
  EXPECT_NEAR(prov.ledger_total, result.value().stats.repair_cost,
              kLedgerTolerance);
  ASSERT_EQ(prov.change_decision.size(), result.value().changes.size());
  ASSERT_EQ(prov.change_cost.size(), result.value().changes.size());
  double replayed = 0;
  for (size_t i = 0; i < result.value().changes.size(); ++i) {
    EXPECT_GE(prov.change_decision[i], 0)
        << "change " << i << " has no owning decision";
    replayed += prov.change_cost[i];
  }
  EXPECT_NEAR(replayed, result.value().stats.repair_cost, kLedgerTolerance);
}

TEST(ProvenanceLedgerTest, ReconcilesOnCitizensAllAlgorithmsAllThreads) {
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  for (RepairAlgorithm algorithm :
       {RepairAlgorithm::kExact, RepairAlgorithm::kGreedy,
        RepairAlgorithm::kApproJoin}) {
    for (int threads : {1, 2, 4, 8}) {
      SCOPED_TRACE(std::string(RepairAlgorithmName(algorithm)) + " x " +
                   std::to_string(threads) + " threads");
      RepairOptions options = CitizensOptions(algorithm);
      options.threads = threads;
      ExpectLedgerReconciles(dirty, fds, options);
    }
  }
}

TEST(ProvenanceLedgerTest, ReconcilesOnHosp) {
  GeneratedCase c = MakeGenerated(/*hosp=*/true);
  for (RepairAlgorithm algorithm :
       {RepairAlgorithm::kExact, RepairAlgorithm::kGreedy,
        RepairAlgorithm::kApproJoin}) {
    for (int threads : {1, 4}) {
      SCOPED_TRACE(std::string(RepairAlgorithmName(algorithm)) + " x " +
                   std::to_string(threads) + " threads");
      RepairOptions options = c.options;
      options.algorithm = algorithm;
      options.threads = threads;
      ExpectLedgerReconciles(c.dirty, c.fds, options);
    }
  }
}

TEST(ProvenanceLedgerTest, ReconcilesOnTax) {
  GeneratedCase c = MakeGenerated(/*hosp=*/false);
  for (RepairAlgorithm algorithm :
       {RepairAlgorithm::kExact, RepairAlgorithm::kGreedy,
        RepairAlgorithm::kApproJoin}) {
    for (int threads : {1, 4}) {
      SCOPED_TRACE(std::string(RepairAlgorithmName(algorithm)) + " x " +
                   std::to_string(threads) + " threads");
      RepairOptions options = c.options;
      options.algorithm = algorithm;
      options.threads = threads;
      ExpectLedgerReconciles(c.dirty, c.fds, options);
    }
  }
}

// Recording provenance must not perturb the repair itself: the repaired
// table, the change log, and the cost must be bit-identical with the
// layer on vs off, at every thread count.
TEST(ProvenanceTest, OutputBitIdenticalWithProvenanceOnVsOff) {
  GeneratedCase c = MakeGenerated(/*hosp=*/true);
  for (int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    RepairOptions options = c.options;
    options.threads = threads;
    options.provenance = false;
    auto off = Repairer(options).Repair(c.dirty, c.fds);
    options.provenance = true;
    auto on = Repairer(options).Repair(c.dirty, c.fds);
    ASSERT_TRUE(off.ok()) << off.status().ToString();
    ASSERT_TRUE(on.ok()) << on.status().ToString();
    EXPECT_EQ(off.value().stats.repair_cost, on.value().stats.repair_cost);
    ASSERT_EQ(off.value().changes.size(), on.value().changes.size());
    for (size_t i = 0; i < off.value().changes.size(); ++i) {
      const CellChange& a = off.value().changes[i];
      const CellChange& b = on.value().changes[i];
      EXPECT_EQ(a.row, b.row);
      EXPECT_EQ(a.col, b.col);
      EXPECT_EQ(a.old_value, b.old_value);
      EXPECT_EQ(a.new_value, b.new_value);
    }
    ASSERT_EQ(off.value().repaired.num_rows(), on.value().repaired.num_rows());
    for (int r = 0; r < off.value().repaired.num_rows(); ++r) {
      for (int col = 0; col < off.value().repaired.num_columns(); ++col) {
        EXPECT_EQ(off.value().repaired.cell(r, col),
                  on.value().repaired.cell(r, col))
            << "cell (" << r << ", " << col << ")";
      }
    }
  }
}

TEST(ExplainReportTest, ReportVerifiesOnCitizens) {
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options = CitizensOptions(RepairAlgorithm::kGreedy);
  options.provenance = true;
  auto result = Repairer(options).Repair(dirty, fds);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::string report = ExplainReportJson(dirty, result.value());

  auto verified = VerifyExplainReport(dirty, report);
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  for (const std::string& error : verified.value().errors) {
    ADD_FAILURE() << error;
  }
  EXPECT_GT(verified.value().decisions_checked, 0);
  EXPECT_GT(verified.value().edges_checked, 0);
  EXPECT_GT(verified.value().changes_checked, 0);
  EXPECT_TRUE(verified.value().violations_recounted);
}

TEST(ExplainReportTest, ReportVerifiesAcrossAlgorithmsAndThreads) {
  GeneratedCase c = MakeGenerated(/*hosp=*/true);
  for (RepairAlgorithm algorithm :
       {RepairAlgorithm::kExact, RepairAlgorithm::kGreedy,
        RepairAlgorithm::kApproJoin}) {
    for (int threads : {1, 4}) {
      SCOPED_TRACE(std::string(RepairAlgorithmName(algorithm)) + " x " +
                   std::to_string(threads) + " threads");
      RepairOptions options = c.options;
      options.algorithm = algorithm;
      options.threads = threads;
      options.provenance = true;
      auto result = Repairer(options).Repair(c.dirty, c.fds);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      std::string report = ExplainReportJson(c.dirty, result.value());
      auto verified = VerifyExplainReport(c.dirty, report);
      ASSERT_TRUE(verified.ok()) << verified.status().ToString();
      for (const std::string& error : verified.value().errors) {
        ADD_FAILURE() << error;
      }
    }
  }
}

// A degraded run (deadline already expired at entry) still produces a
// self-consistent report: detect-only remainders contribute no phantom
// decisions and the ledger stays reconciled.
TEST(ExplainReportTest, ReportVerifiesOnDegradedRun) {
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options = CitizensOptions(RepairAlgorithm::kExact);
  options.provenance = true;
  Budget budget(0);  // expired before the first poll
  options.budget = &budget;
  auto result = Repairer(options).Repair(dirty, fds);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result.value().stats.degraded());
  for (const DegradationEvent& event : result.value().stats.degradations) {
    EXPECT_EQ(event.cause, DegradationCause::kDeadline)
        << "stage " << event.stage << " classified as "
        << DegradationCauseName(event.cause);
  }
  std::string report = ExplainReportJson(dirty, result.value());
  auto verified = VerifyExplainReport(dirty, report);
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  for (const std::string& error : verified.value().errors) {
    ADD_FAILURE() << error;
  }
}

TEST(ExplainReportTest, ReportVerifiesOnCfdRun) {
  Table dirty = CitizensDirty();
  Schema schema = dirty.schema();
  FD fd = std::move(FD::Make({schema.IndexOf("City")},
                             {schema.IndexOf("State")}, "phi2"))
              .ValueOrDie();
  std::vector<PatternRow> tableau;
  tableau.push_back({Value("New York"), Value("NY")});
  tableau.push_back({std::nullopt, std::nullopt});
  CFD cfd = std::move(CFD::Make(fd, std::move(tableau), "c1")).ValueOrDie();
  RepairOptions options;
  options.tau_by_fd = {{"phi2", 0.5}};
  options.provenance = true;
  auto result = Repairer(options).RepairCFDs(dirty, {cfd});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const RepairProvenance& prov = result.value().provenance;
  EXPECT_NEAR(prov.ledger_total, result.value().stats.repair_cost,
              kLedgerTolerance);
  // The constant rule pins (New York -> NY) directly: that path must be
  // attributed to the kConstant rung, not to a graph solver.
  bool saw_constant = false;
  for (const RepairDecision& decision : prov.decisions) {
    saw_constant = saw_constant || decision.rung == SolverRung::kConstant;
  }
  EXPECT_TRUE(saw_constant);
  std::string report = ExplainReportJson(dirty, result.value());
  auto verified = VerifyExplainReport(dirty, report);
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  for (const std::string& error : verified.value().errors) {
    ADD_FAILURE() << error;
  }
}

// Replaying a report against a table it does not describe must fail:
// the verifier derives truth from the input, not from the report.
TEST(ExplainReportTest, VerifierRejectsMismatchedInput) {
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options = CitizensOptions(RepairAlgorithm::kGreedy);
  options.provenance = true;
  auto result = Repairer(options).Repair(dirty, fds);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::string report = ExplainReportJson(dirty, result.value());
  auto verified = VerifyExplainReport(CitizensTruth(), report);
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  EXPECT_FALSE(verified.value().ok())
      << "verifier accepted a report against the wrong input table";
}

TEST(ExplainReportTest, VerifierRejectsUnknownSchemaVersion) {
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options = CitizensOptions(RepairAlgorithm::kGreedy);
  options.provenance = true;
  auto result = Repairer(options).Repair(dirty, fds);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::string report = ExplainReportJson(dirty, result.value());
  const std::string versioned =
      "\"schema_version\":" + std::to_string(kExplainSchemaVersion);
  size_t at = report.find(versioned);
  ASSERT_NE(at, std::string::npos);
  report.replace(at, versioned.size(), "\"schema_version\":999");
  auto verified = VerifyExplainReport(dirty, report);
  EXPECT_FALSE(verified.ok());
}

TEST(AuditLogTest, StreamIsWellFormedAndOrdered) {
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options = CitizensOptions(RepairAlgorithm::kGreedy);
  options.provenance = true;
  auto result = Repairer(options).Repair(dirty, fds);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::string ndjson = AuditLogNdjson(result.value());
  std::istringstream lines(ndjson);
  std::string line;
  std::vector<std::string> events;
  int decisions = 0;
  int degradations = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    auto parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok())
        << parsed.status().ToString() << " in line: " << line;
    auto event = parsed.value().GetString("event");
    ASSERT_TRUE(event.ok());
    events.push_back(event.value());
    if (event.value() == "decision") ++decisions;
    if (event.value() == "degradation") ++degradations;
  }
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events.front(), "run_start");
  EXPECT_EQ(events.back(), "run_end");
  EXPECT_EQ(static_cast<size_t>(decisions),
            result.value().provenance.decisions.size());
  EXPECT_EQ(static_cast<size_t>(degradations),
            result.value().stats.degradations.size());
}

TEST(AuditLogTest, DegradationsInterleaveBeforeRunEnd) {
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options = CitizensOptions(RepairAlgorithm::kExact);
  options.provenance = true;
  Budget budget(0);
  options.budget = &budget;
  auto result = Repairer(options).Repair(dirty, fds);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result.value().stats.degraded());
  std::string ndjson = AuditLogNdjson(result.value());
  EXPECT_NE(ndjson.find("\"event\":\"degradation\""), std::string::npos);
  EXPECT_NE(ndjson.find("\"cause\":\"deadline\""), std::string::npos);
  std::istringstream lines(ndjson);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    auto parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ++count;
  }
  EXPECT_GE(count, 3);  // run_start + at least one degradation + run_end
}

TEST(ExplainCellTest, ExplainsChangedAndUnchangedCells) {
  Table dirty = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(dirty.schema());
  RepairOptions options = CitizensOptions(RepairAlgorithm::kGreedy);
  options.provenance = true;
  auto result = Repairer(options).Repair(dirty, fds);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result.value().changes.empty());
  const CellChange& change = result.value().changes.front();
  std::string text =
      ExplainCellText(dirty.schema(), result.value(), change.row, change.col);
  EXPECT_NE(text.find("->"), std::string::npos) << text;
  EXPECT_NE(text.find("decision"), std::string::npos) << text;
  EXPECT_NE(text.find(dirty.schema().column(change.col).name),
            std::string::npos)
      << text;
  // Row 0 (Janaina) is clean in Table 1.
  std::string clean = ExplainCellText(dirty.schema(), result.value(), 0, 0);
  EXPECT_NE(clean.find("not changed"), std::string::npos) << clean;
  std::string bad_col =
      ExplainCellText(dirty.schema(), result.value(), 0, 99);
  EXPECT_NE(bad_col.find("outside the schema"), std::string::npos);
}

TEST(DegradationCauseTest, NamesAreStableAndDistinct) {
  EXPECT_STREQ(DegradationCauseName(DegradationCause::kUnknown), "unknown");
  EXPECT_STREQ(DegradationCauseName(DegradationCause::kDeadline),
               "deadline");
  EXPECT_STREQ(DegradationCauseName(DegradationCause::kMemorySoft),
               "memory_soft");
  EXPECT_STREQ(DegradationCauseName(DegradationCause::kMemoryHard),
               "memory_hard");
  EXPECT_STREQ(DegradationCauseName(DegradationCause::kSearchValve),
               "search_valve");
}

TEST(DegradationCauseTest, ClassifierPrioritizesHardMemory) {
  MemoryBudget tiny(1);  // 1 byte: any charge exhausts it
  (void)tiny.TryCharge(1024);
  Budget expired(0);
  // Hard memory wins over an expired deadline; an expired deadline wins
  // over a merely-soft signal; no signal means the search valve fired.
  if (tiny.Exhausted()) {
    EXPECT_EQ(ClassifyDegradationCause(&expired, &tiny),
              DegradationCause::kMemoryHard);
  }
  EXPECT_EQ(ClassifyDegradationCause(&expired, nullptr),
            DegradationCause::kDeadline);
  EXPECT_EQ(ClassifyDegradationCause(nullptr, nullptr),
            DegradationCause::kSearchValve);
}

// ---- Satellite: merge-operator laws the parallel solve relies on ----

RepairStats MakeStats(int k) {
  RepairStats s;
  s.ft_violations_before = 10u + static_cast<uint64_t>(k);
  s.ft_violations_after = static_cast<uint64_t>(k);
  s.repair_cost = 0.25 * k;
  s.cells_changed = k;
  s.tuples_changed = 2 * k;
  s.expansion_nodes = 3u * static_cast<uint64_t>(k);
  s.expansion_pruned = static_cast<uint64_t>(k) + 1u;
  s.combinations_examined = 5u * static_cast<uint64_t>(k);
  s.combinations_pruned = static_cast<uint64_t>(k);
  s.target_nodes_visited = 7u * static_cast<uint64_t>(k);
  s.target_nodes_pruned = static_cast<uint64_t>(k);
  s.targets_materialized = static_cast<uint64_t>(k) * 2u;
  s.join_empty = (k % 2) == 0;
  s.trusted_conflicts = static_cast<uint64_t>(k);
  DegradationEvent event;
  event.component = "c" + std::to_string(k);
  event.stage = "exact->greedy";
  event.cause = DegradationCause::kSearchValve;
  event.reason = "synthetic";
  event.elapsed_ms = k;
  s.degradations.push_back(event);
  s.phases.detect_ms = k;
  s.phases.graph_ms = 2.0 * k;
  s.phases.solve_ms = 3.0 * k;
  s.phases.targets_ms = 4.0 * k;
  s.phases.apply_ms = 5.0 * k;
  s.phases.stats_ms = 6.0 * k;
  s.phases.total_ms = 21.0 * k;
  return s;
}

void ExpectNumericFieldsEq(const RepairStats& a, const RepairStats& b) {
  EXPECT_EQ(a.ft_violations_before, b.ft_violations_before);
  EXPECT_EQ(a.ft_violations_after, b.ft_violations_after);
  EXPECT_DOUBLE_EQ(a.repair_cost, b.repair_cost);
  EXPECT_EQ(a.cells_changed, b.cells_changed);
  EXPECT_EQ(a.tuples_changed, b.tuples_changed);
  EXPECT_EQ(a.expansion_nodes, b.expansion_nodes);
  EXPECT_EQ(a.expansion_pruned, b.expansion_pruned);
  EXPECT_EQ(a.combinations_examined, b.combinations_examined);
  EXPECT_EQ(a.combinations_pruned, b.combinations_pruned);
  EXPECT_EQ(a.target_nodes_visited, b.target_nodes_visited);
  EXPECT_EQ(a.target_nodes_pruned, b.target_nodes_pruned);
  EXPECT_EQ(a.targets_materialized, b.targets_materialized);
  EXPECT_EQ(a.join_empty, b.join_empty);
  EXPECT_EQ(a.trusted_conflicts, b.trusted_conflicts);
  EXPECT_DOUBLE_EQ(a.phases.detect_ms, b.phases.detect_ms);
  EXPECT_DOUBLE_EQ(a.phases.graph_ms, b.phases.graph_ms);
  EXPECT_DOUBLE_EQ(a.phases.solve_ms, b.phases.solve_ms);
  EXPECT_DOUBLE_EQ(a.phases.targets_ms, b.phases.targets_ms);
  EXPECT_DOUBLE_EQ(a.phases.apply_ms, b.phases.apply_ms);
  EXPECT_DOUBLE_EQ(a.phases.stats_ms, b.phases.stats_ms);
  EXPECT_DOUBLE_EQ(a.phases.total_ms, b.phases.total_ms);
}

TEST(StatsMergeTest, MergeIsAssociative) {
  RepairStats left = MakeStats(1);
  {
    RepairStats bc = MakeStats(2);
    bc.Merge(MakeStats(3));
    left.Merge(bc);
  }
  RepairStats right = MakeStats(1);
  right.Merge(MakeStats(2));
  right.Merge(MakeStats(3));
  ExpectNumericFieldsEq(left, right);
  // Events concatenate identically under either association.
  ASSERT_EQ(left.degradations.size(), right.degradations.size());
  for (size_t i = 0; i < left.degradations.size(); ++i) {
    EXPECT_EQ(left.degradations[i].component,
              right.degradations[i].component);
  }
}

TEST(StatsMergeTest, NumericFieldsCommuteEventsPreserveOrder) {
  RepairStats ab = MakeStats(1);
  ab.Merge(MakeStats(2));
  RepairStats ba = MakeStats(2);
  ba.Merge(MakeStats(1));
  // The replay merge always merges in component order, so full
  // commutativity is not required — but the counters must commute (they
  // are sums) while the event log is explicitly order-preserving.
  ExpectNumericFieldsEq(ab, ba);
  ASSERT_EQ(ab.degradations.size(), 2u);
  EXPECT_EQ(ab.degradations[0].component, "c1");
  EXPECT_EQ(ab.degradations[1].component, "c2");
  EXPECT_EQ(ba.degradations[0].component, "c2");
  EXPECT_EQ(ba.degradations[1].component, "c1");
}

TEST(StatsMergeTest, DefaultStatsAreMergeIdentity) {
  RepairStats merged;
  merged.Merge(MakeStats(4));
  ExpectNumericFieldsEq(merged, MakeStats(4));
  EXPECT_EQ(merged.degradations.size(), 1u);
}

TEST(PhaseTimingsMergeTest, MergeIsAssociativeAndCommutative) {
  PhaseTimings a;
  a.detect_ms = 1;
  a.solve_ms = 2;
  a.total_ms = 3;
  PhaseTimings b;
  b.graph_ms = 4;
  b.apply_ms = 5;
  b.total_ms = 6;
  PhaseTimings c;
  c.targets_ms = 7;
  c.stats_ms = 8;
  c.total_ms = 9;

  PhaseTimings left = a;
  {
    PhaseTimings bc = b;
    bc.Merge(c);
    left.Merge(bc);
  }
  PhaseTimings right = a;
  right.Merge(b);
  right.Merge(c);
  PhaseTimings swapped = c;
  swapped.Merge(b);
  swapped.Merge(a);
  for (const PhaseTimings& other : {right, swapped}) {
    EXPECT_DOUBLE_EQ(left.detect_ms, other.detect_ms);
    EXPECT_DOUBLE_EQ(left.graph_ms, other.graph_ms);
    EXPECT_DOUBLE_EQ(left.solve_ms, other.solve_ms);
    EXPECT_DOUBLE_EQ(left.targets_ms, other.targets_ms);
    EXPECT_DOUBLE_EQ(left.apply_ms, other.apply_ms);
    EXPECT_DOUBLE_EQ(left.stats_ms, other.stats_ms);
    EXPECT_DOUBLE_EQ(left.total_ms, other.total_ms);
  }
}

// ---- The in-repo JSON parser feeding the replay verifier ----

TEST(JsonParserTest, ParsesTheBasicShapes) {
  auto doc = JsonValue::Parse(
      R"({"a": 1.5, "b": [true, false, null], "c": {"nested": "x"}})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_DOUBLE_EQ(doc.value().GetNumber("a").ValueOrDie(), 1.5);
  ASSERT_TRUE(doc.value().Get("b").is_array());
  EXPECT_EQ(doc.value().Get("b").array().size(), 3u);
  EXPECT_TRUE(doc.value().Get("b").array()[0].boolean());
  EXPECT_TRUE(doc.value().Get("b").array()[2].is_null());
  EXPECT_EQ(doc.value().Get("c").GetString("nested").ValueOrDie(), "x");
  EXPECT_FALSE(doc.value().Has("missing"));
  EXPECT_TRUE(doc.value().Get("missing").is_null());
}

TEST(JsonParserTest, DecodesEscapesAndSurrogatePairs) {
  auto doc = JsonValue::Parse(R"(["a\"b\\c\n", "\u0041", "\ud83d\ude00"])");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc.value().array()[0].str(), "a\"b\\c\n");
  EXPECT_EQ(doc.value().array()[1].str(), "A");
  EXPECT_EQ(doc.value().array()[2].str(), "\xF0\x9F\x98\x80");
}

TEST(JsonParserTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1, 2,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
}

TEST(JsonParserTest, NumberExactRoundTrips) {
  for (double v : {0.1, 1.0 / 3.0, 1e-9, 123456789.123456789, -0.0, 2e300}) {
    auto doc = JsonValue::Parse(JsonNumberExact(v));
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_EQ(doc.value().number(), v) << JsonNumberExact(v);
  }
}

}  // namespace
}  // namespace ftrepair
