#ifndef FTREPAIR_TESTS_TEST_UTIL_H_
#define FTREPAIR_TESTS_TEST_UTIL_H_

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "constraint/fd.h"
#include "constraint/fd_parser.h"
#include "data/table.h"

namespace ftrepair {
namespace testing_util {

/// Scoped setenv/unsetenv so a failing assertion cannot leak a fault
/// seam into later tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() { unsetenv(name_); }

 private:
  const char* name_;
};

/// Schema of the paper's running example (Table 1): US citizens.
inline Schema CitizensSchema() {
  return Schema({{"Name", ValueType::kString},
                 {"Education", ValueType::kString},
                 {"Level", ValueType::kNumber},
                 {"City", ValueType::kString},
                 {"Street", ValueType::kString},
                 {"District", ValueType::kString},
                 {"State", ValueType::kString}});
}

inline Row CitizensRow(const std::string& name, const std::string& education,
                       double level, const std::string& city,
                       const std::string& street, const std::string& district,
                       const std::string& state) {
  return Row{Value(name),   Value(education), Value(level), Value(city),
             Value(street), Value(district),  Value(state)};
}

/// The dirty instance of Table 1 (errors exactly as highlighted there).
inline Table CitizensDirty() {
  Table t(CitizensSchema());
  auto add = [&t](Row row) { (void)t.AppendRow(std::move(row)); };
  add(CitizensRow("Janaina", "Bachelors", 3, "New York", "Main", "Manhattan", "NY"));
  add(CitizensRow("Aloke", "Bachelors", 3, "New York", "Main", "Manhattan", "NY"));
  add(CitizensRow("Jieyu", "Bachelors", 3, "New York", "Western", "Queens", "NY"));
  add(CitizensRow("Paulo", "Masters", 4, "New York", "Western", "Queens", "MA"));
  add(CitizensRow("Zoe", "Masters", 4, "Boston", "Main", "Manhattan", "NY"));
  add(CitizensRow("Gara", "Masers", 4, "Boston", "Main", "Financial", "MA"));
  add(CitizensRow("Mitchell", "HS-grad", 9, "Boston", "Main", "Financial", "MA"));
  add(CitizensRow("Pavol", "Masters", 3, "Boton", "Arlingto", "Brookside", "MA"));
  add(CitizensRow("Thilo", "Bachelors", 1, "Boston", "Arlingto", "Brookside", "MA"));
  add(CitizensRow("Nenad", "Bachelers", 3, "Boston", "Arlingto", "Brookside", "NY"));
  return t;
}

/// Ground truth for Table 1 (the corrections highlighted in the paper).
inline Table CitizensTruth() {
  Table t(CitizensSchema());
  auto add = [&t](Row row) { (void)t.AppendRow(std::move(row)); };
  add(CitizensRow("Janaina", "Bachelors", 3, "New York", "Main", "Manhattan", "NY"));
  add(CitizensRow("Aloke", "Bachelors", 3, "New York", "Main", "Manhattan", "NY"));
  add(CitizensRow("Jieyu", "Bachelors", 3, "New York", "Western", "Queens", "NY"));
  add(CitizensRow("Paulo", "Masters", 4, "New York", "Western", "Queens", "NY"));
  add(CitizensRow("Zoe", "Masters", 4, "New York", "Main", "Manhattan", "NY"));
  add(CitizensRow("Gara", "Masters", 4, "Boston", "Main", "Financial", "MA"));
  add(CitizensRow("Mitchell", "HS-grad", 9, "Boston", "Main", "Financial", "MA"));
  add(CitizensRow("Pavol", "Masters", 4, "Boston", "Arlingto", "Brookside", "MA"));
  add(CitizensRow("Thilo", "Bachelors", 3, "Boston", "Arlingto", "Brookside", "MA"));
  add(CitizensRow("Nenad", "Bachelors", 3, "Boston", "Arlingto", "Brookside", "MA"));
  return t;
}

/// The three FDs of Example 2: phi1, phi2, phi3.
inline std::vector<FD> CitizensFDs(const Schema& schema) {
  return std::move(ParseFDList(
                       "phi1: Education -> Level\n"
                       "phi2: City -> State\n"
                       "phi3: City, Street -> District\n",
                       schema))
      .ValueOrDie();
}

/// A small random table over `num_cols` string columns where column 0
/// functionally determines every other column (values "k<i>" / "v<i>_<c>"),
/// with `num_flips` cells randomly replaced by other domain values.
/// Used by property suites.
inline Table RandomFDTable(int num_rows, int num_cols, int num_keys,
                           int num_flips, uint64_t seed) {
  std::vector<Column> columns;
  for (int c = 0; c < num_cols; ++c) {
    columns.push_back(Column{"c" + std::to_string(c), ValueType::kString});
  }
  Table table{Schema(std::move(columns))};
  Rng rng(seed);
  for (int r = 0; r < num_rows; ++r) {
    int key = static_cast<int>(rng.Index(static_cast<size_t>(num_keys)));
    Row row;
    row.emplace_back("key" + std::to_string(key));
    for (int c = 1; c < num_cols; ++c) {
      row.emplace_back("val" + std::to_string(key) + "c" +
                       std::to_string(c));
    }
    (void)table.AppendRow(std::move(row));
  }
  for (int f = 0; f < num_flips && table.num_rows() > 0; ++f) {
    int r = static_cast<int>(rng.Index(static_cast<size_t>(table.num_rows())));
    int c = static_cast<int>(rng.Index(static_cast<size_t>(num_cols)));
    int key = static_cast<int>(rng.Index(static_cast<size_t>(num_keys)));
    Value v = c == 0 ? Value("key" + std::to_string(key))
                     : Value("val" + std::to_string(key) + "c" +
                             std::to_string(c));
    table.SetCell(r, c, v);
  }
  return table;
}

namespace json_detail {

inline void SkipWs(const std::string& s, size_t* i) {
  while (*i < s.size() && (s[*i] == ' ' || s[*i] == '\t' || s[*i] == '\n' ||
                           s[*i] == '\r')) {
    ++*i;
  }
}

inline bool ParseValue(const std::string& s, size_t* i, int depth);

inline bool ParseString(const std::string& s, size_t* i) {
  if (*i >= s.size() || s[*i] != '"') return false;
  ++*i;
  while (*i < s.size()) {
    char c = s[*i];
    if (c == '"') {
      ++*i;
      return true;
    }
    if (c == '\\') {
      ++*i;
      if (*i >= s.size()) return false;
      char e = s[*i];
      if (e == 'u') {
        for (int k = 0; k < 4; ++k) {
          ++*i;
          if (*i >= s.size() || !isxdigit(static_cast<unsigned char>(s[*i]))) {
            return false;
          }
        }
      } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                 e != 'n' && e != 'r' && e != 't') {
        return false;
      }
    }
    ++*i;
  }
  return false;
}

inline bool ParseNumber(const std::string& s, size_t* i) {
  size_t start = *i;
  if (*i < s.size() && s[*i] == '-') ++*i;
  while (*i < s.size() && (isdigit(static_cast<unsigned char>(s[*i])) ||
                           s[*i] == '.' || s[*i] == 'e' || s[*i] == 'E' ||
                           s[*i] == '+' || s[*i] == '-')) {
    ++*i;
  }
  return *i > start;
}

inline bool ParseValue(const std::string& s, size_t* i, int depth) {
  if (depth > 64) return false;
  SkipWs(s, i);
  if (*i >= s.size()) return false;
  char c = s[*i];
  if (c == '{') {
    ++*i;
    SkipWs(s, i);
    if (*i < s.size() && s[*i] == '}') {
      ++*i;
      return true;
    }
    while (true) {
      SkipWs(s, i);
      if (!ParseString(s, i)) return false;
      SkipWs(s, i);
      if (*i >= s.size() || s[*i] != ':') return false;
      ++*i;
      if (!ParseValue(s, i, depth + 1)) return false;
      SkipWs(s, i);
      if (*i < s.size() && s[*i] == ',') {
        ++*i;
        continue;
      }
      if (*i < s.size() && s[*i] == '}') {
        ++*i;
        return true;
      }
      return false;
    }
  }
  if (c == '[') {
    ++*i;
    SkipWs(s, i);
    if (*i < s.size() && s[*i] == ']') {
      ++*i;
      return true;
    }
    while (true) {
      if (!ParseValue(s, i, depth + 1)) return false;
      SkipWs(s, i);
      if (*i < s.size() && s[*i] == ',') {
        ++*i;
        continue;
      }
      if (*i < s.size() && s[*i] == ']') {
        ++*i;
        return true;
      }
      return false;
    }
  }
  if (c == '"') return ParseString(s, i);
  if (s.compare(*i, 4, "true") == 0) {
    *i += 4;
    return true;
  }
  if (s.compare(*i, 5, "false") == 0) {
    *i += 5;
    return true;
  }
  if (s.compare(*i, 4, "null") == 0) {
    *i += 4;
    return true;
  }
  return ParseNumber(s, i);
}

}  // namespace json_detail

/// Strict syntactic check that `text` is one complete JSON value
/// (objects, arrays, strings with escapes, numbers, literals). No
/// external dependency: a ~100-line recursive-descent validator shared
/// by the metrics/trace JSON tests.
inline bool IsValidJson(const std::string& text) {
  size_t i = 0;
  if (!json_detail::ParseValue(text, &i, 0)) return false;
  json_detail::SkipWs(text, &i);
  return i == text.size();
}

}  // namespace testing_util
}  // namespace ftrepair

#endif  // FTREPAIR_TESTS_TEST_UTIL_H_
