#include <algorithm>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "metric/distance.h"

namespace ftrepair {
namespace {

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(EditDistance("Masters", "Masers"), 1u);   // paper Table 1
  EXPECT_EQ(EditDistance("Boston", "Boton"), 1u);     // paper Table 1
  EXPECT_EQ(EditDistance("Bachelors", "Bachelers"), 1u);
}

TEST(EditDistanceTest, NormalizedKnownValues) {
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("abc", ""), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("abc", "abd"), 1.0 / 3.0);
  // Example 5 ingredient: dist(Masters, Masers) = 1/7.
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("Masters", "Masers"), 1.0 / 7.0);
}

class EditDistancePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EditDistancePropertyTest, MetricAxiomsOnRandomStrings) {
  Rng rng(GetParam());
  auto random_string = [&rng]() {
    std::string s;
    size_t len = rng.Index(10);
    for (size_t i = 0; i < len; ++i) {
      s += static_cast<char>('a' + rng.Index(4));
    }
    return s;
  };
  for (int iter = 0; iter < 300; ++iter) {
    std::string a = random_string();
    std::string b = random_string();
    std::string c = random_string();
    size_t dab = EditDistance(a, b);
    size_t dba = EditDistance(b, a);
    EXPECT_EQ(dab, dba) << a << " / " << b;            // symmetry
    EXPECT_EQ(EditDistance(a, a), 0u);                  // identity
    if (a != b) {
      EXPECT_GT(dab, 0u);
    }
    // Triangle inequality.
    EXPECT_LE(EditDistance(a, c), dab + EditDistance(b, c));
    // Length difference lower bound, max length upper bound.
    size_t diff = a.size() > b.size() ? a.size() - b.size()
                                      : b.size() - a.size();
    EXPECT_GE(dab, diff);
    EXPECT_LE(dab, std::max(a.size(), b.size()));
    // Normalization in [0, 1].
    double norm = NormalizedEditDistance(a, b);
    EXPECT_GE(norm, 0.0);
    EXPECT_LE(norm, 1.0);
    EXPECT_LE(EditDistanceLengthLowerBound(a.size(), b.size()),
              norm + 1e-12);
  }
}

TEST_P(EditDistancePropertyTest, BoundedMatchesExact) {
  Rng rng(GetParam() * 31 + 5);
  auto random_string = [&rng]() {
    std::string s;
    size_t len = rng.Index(12);
    for (size_t i = 0; i < len; ++i) {
      s += static_cast<char>('a' + rng.Index(3));
    }
    return s;
  };
  for (int iter = 0; iter < 500; ++iter) {
    std::string a = random_string();
    std::string b = random_string();
    size_t exact = EditDistance(a, b);
    for (size_t cap = 0; cap <= 12; ++cap) {
      size_t expected = exact <= cap ? exact : cap + 1;
      EXPECT_EQ(BoundedEditDistance(a, b, cap), expected)
          << "a='" << a << "' b='" << b << "' cap=" << cap;
    }
  }
}

TEST_P(EditDistancePropertyTest, BoundedMatchesExactLongAsymmetric) {
  // Long, length-asymmetric pairs over a wider alphabet stress the
  // band bookkeeping (the band hugs the diagonal and slides right one
  // column per row once i > cap) far harder than the short pairs above.
  Rng rng(GetParam() * 101 + 17);
  auto random_string = [&rng](size_t max_len) {
    std::string s;
    size_t len = rng.Index(max_len + 1);
    for (size_t i = 0; i < len; ++i) {
      s += static_cast<char>('a' + rng.Index(12));
    }
    return s;
  };
  for (int iter = 0; iter < 60; ++iter) {
    std::string a = random_string(40);
    std::string b = random_string(iter % 2 == 0 ? 40 : 8);
    size_t exact = EditDistance(a, b);
    size_t max_len = std::max(a.size(), b.size());
    for (size_t cap = 0; cap <= max_len + 1; ++cap) {
      size_t expected = exact <= cap ? exact : cap + 1;
      EXPECT_EQ(BoundedEditDistance(a, b, cap), expected)
          << "a='" << a << "' b='" << b << "' cap=" << cap;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EditDistancePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(LengthLowerBoundTest, Values) {
  EXPECT_DOUBLE_EQ(EditDistanceLengthLowerBound(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(EditDistanceLengthLowerBound(4, 4), 0.0);
  EXPECT_DOUBLE_EQ(EditDistanceLengthLowerBound(2, 4), 0.5);
  EXPECT_DOUBLE_EQ(EditDistanceLengthLowerBound(0, 4), 1.0);
}

TEST(JaccardTest, TokenSets) {
  EXPECT_DOUBLE_EQ(TokenJaccardDistance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(TokenJaccardDistance("a b", "a b"), 0.0);
  EXPECT_DOUBLE_EQ(TokenJaccardDistance("a b", "b a"), 0.0);  // set semantics
  EXPECT_DOUBLE_EQ(TokenJaccardDistance("a b", "a c"), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(TokenJaccardDistance("a", "b"), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccardDistance("  a   b ", "a b"), 0.0);
}

TEST(JaccardTest, AnyWhitespaceSeparates) {
  // Tabs, newlines, CR, FF and VT all split tokens — a tab-separated
  // pair must not glue into one token and inflate the distance.
  EXPECT_DOUBLE_EQ(TokenJaccardDistance("a\tb", "a b"), 0.0);
  EXPECT_DOUBLE_EQ(TokenJaccardDistance("a\nb\r\nc", "c b a"), 0.0);
  EXPECT_DOUBLE_EQ(TokenJaccardDistance("x\vy\fz", "x y z"), 0.0);
  EXPECT_DOUBLE_EQ(TokenJaccardDistance("\t\n ", ""), 0.0);
  EXPECT_DOUBLE_EQ(TokenJaccardDistance("a\tb", "a"), 0.5);
  // High bytes are never whitespace (and must not trip isspace UB).
  EXPECT_DOUBLE_EQ(TokenJaccardDistance("\xa0", "\xa0"), 0.0);
}

TEST(JaroTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroDistance("abc", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(JaroDistance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroDistance("abc", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroDistance("abc", "xyz"), 1.0);
  // Classic reference pair: jaro(MARTHA, MARHTA) = 0.944...
  EXPECT_NEAR(1.0 - JaroDistance("MARTHA", "MARHTA"), 0.9444, 1e-3);
  // jaro(DIXON, DICKSONX) = 0.7667.
  EXPECT_NEAR(1.0 - JaroDistance("DIXON", "DICKSONX"), 0.7667, 1e-3);
}

TEST(JaroWinklerTest, PrefixBonus) {
  // Winkler reference: jw(MARTHA, MARHTA) = 0.9611.
  EXPECT_NEAR(1.0 - JaroWinklerDistance("MARTHA", "MARHTA"), 0.9611, 1e-3);
  // A shared prefix strictly improves on plain Jaro.
  EXPECT_LT(JaroWinklerDistance("prefix_aaa", "prefix_bbb"),
            JaroDistance("prefix_aaa", "prefix_bbb"));
  // No shared prefix: identical to Jaro.
  EXPECT_DOUBLE_EQ(JaroWinklerDistance("abc", "xbc"),
                   JaroDistance("abc", "xbc"));
  EXPECT_DOUBLE_EQ(JaroWinklerDistance("same", "same"), 0.0);
}

TEST(QGramCosineTest, Behaviour) {
  EXPECT_DOUBLE_EQ(QGramCosineDistance("abcd", "abcd"), 0.0);
  EXPECT_DOUBLE_EQ(QGramCosineDistance("ab", "cd"), 1.0);
  // Sharing most bigrams => small distance.
  double near = QGramCosineDistance("database", "databose");
  double far = QGramCosineDistance("database", "spreadsheet");
  EXPECT_LT(near, far);
  EXPECT_GT(near, 0.0);
  // Short strings fall back to whole-string grams.
  EXPECT_DOUBLE_EQ(QGramCosineDistance("a", "a"), 0.0);
  EXPECT_DOUBLE_EQ(QGramCosineDistance("a", "b"), 1.0);
  // Bounds.
  EXPECT_GE(QGramCosineDistance("xy", "yx"), 0.0);
  EXPECT_LE(QGramCosineDistance("xy", "yx"), 1.0);
}

class AltMetricPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AltMetricPropertyTest, SymmetryAndBounds) {
  Rng rng(GetParam() * 97 + 11);
  auto random_string = [&rng]() {
    std::string s;
    size_t len = rng.Index(12);
    for (size_t i = 0; i < len; ++i) {
      s += static_cast<char>('a' + rng.Index(5));
    }
    return s;
  };
  for (int iter = 0; iter < 200; ++iter) {
    std::string a = random_string();
    std::string b = random_string();
    for (auto* fn : {&JaroDistance, &JaroWinklerDistance}) {
      double ab = fn(a, b);
      EXPECT_NEAR(ab, fn(b, a), 1e-12);
      EXPECT_GE(ab, -1e-12);
      EXPECT_LE(ab, 1.0 + 1e-12);
      EXPECT_NEAR(fn(a, a), 0.0, 1e-12);
    }
    double q = QGramCosineDistance(a, b);
    EXPECT_NEAR(q, QGramCosineDistance(b, a), 1e-12);
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AltMetricPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(EuclideanTest, NormalizedByRange) {
  EXPECT_DOUBLE_EQ(NormalizedEuclideanDistance(3, 3, 10), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEuclideanDistance(3, 8, 10), 0.5);
  EXPECT_DOUBLE_EQ(NormalizedEuclideanDistance(0, 100, 10), 1.0);  // clamped
  // Degenerate range: discrete metric.
  EXPECT_DOUBLE_EQ(NormalizedEuclideanDistance(1, 2, 0), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEuclideanDistance(1, 1, 0), 0.0);
  // Paper Example 7 ingredient: |3 - 1| / 8 = 0.25.
  EXPECT_DOUBLE_EQ(NormalizedEuclideanDistance(3, 1, 8), 0.25);
}

}  // namespace
}  // namespace ftrepair
