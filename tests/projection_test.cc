#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "constraint/fd_parser.h"
#include "metric/projection.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;

TEST(DistanceModelTest, EqualValuesAreZero) {
  Table t = CitizensDirty();
  DistanceModel model(t);
  EXPECT_DOUBLE_EQ(model.CellDistance(0, Value("x"), Value("x")), 0.0);
  EXPECT_DOUBLE_EQ(model.CellDistance(2, Value(3.0), Value(3.0)), 0.0);
  EXPECT_DOUBLE_EQ(model.CellDistance(0, Value(), Value()), 0.0);
}

TEST(DistanceModelTest, NullVsValueIsOne) {
  Table t = CitizensDirty();
  DistanceModel model(t);
  EXPECT_DOUBLE_EQ(model.CellDistance(0, Value(), Value("x")), 1.0);
}

TEST(DistanceModelTest, StringsUseNormalizedEdit) {
  Table t = CitizensDirty();
  DistanceModel model(t);
  EXPECT_DOUBLE_EQ(
      model.CellDistance(1, Value("Masters"), Value("Masers")), 1.0 / 7);
}

TEST(DistanceModelTest, NumbersUseRangeNormalizedEuclidean) {
  Table t = CitizensDirty();
  DistanceModel model(t);
  int level = t.schema().IndexOf("Level");
  // Level range in Table 1 is [1, 9] => range 8.
  EXPECT_DOUBLE_EQ(model.Range(level), 8.0);
  EXPECT_DOUBLE_EQ(model.CellDistance(level, Value(3.0), Value(1.0)), 0.25);
}

TEST(DistanceModelTest, MixedTypeUsesEditOnRenderings) {
  // A typo'd numeric cell ("3x") stays *close* to its origin under the
  // default metric, so FT-detection can still associate it; under an
  // explicit Euclidean metric it is maximally dirty.
  Table t = CitizensDirty();
  DistanceModel model(t);
  int level = t.schema().IndexOf("Level");
  EXPECT_DOUBLE_EQ(model.CellDistance(level, Value(3.0), Value("3x")), 0.5);
  model.SetColumnMetric(level, ColumnMetric::kEuclidean);
  EXPECT_DOUBLE_EQ(model.CellDistance(level, Value(3.0), Value("3x")), 1.0);
}

TEST(DistanceModelTest, ColumnMetricOverrides) {
  Table t = CitizensDirty();
  DistanceModel model(t);
  model.SetColumnMetric(0, ColumnMetric::kDiscrete);
  EXPECT_DOUBLE_EQ(model.CellDistance(0, Value("ab"), Value("ac")), 1.0);
  model.SetColumnMetric(0, ColumnMetric::kJaccard);
  EXPECT_DOUBLE_EQ(
      model.CellDistance(0, Value("a b"), Value("b a")), 0.0);
  model.SetColumnMetric(0, ColumnMetric::kEdit);
  EXPECT_DOUBLE_EQ(model.CellDistance(0, Value("ab"), Value("ac")), 0.5);
}

TEST(DistanceModelTest, JaroWinklerAndQGramOverrides) {
  Table t = CitizensDirty();
  DistanceModel model(t);
  model.SetColumnMetric(0, ColumnMetric::kJaroWinkler);
  EXPECT_NEAR(model.CellDistance(0, Value("MARTHA"), Value("MARHTA")),
              1 - 0.9611, 1e-3);
  model.SetColumnMetric(0, ColumnMetric::kQGramCosine);
  EXPECT_DOUBLE_EQ(model.CellDistance(0, Value("abcd"), Value("abcd")), 0.0);
  EXPECT_GT(model.CellDistance(0, Value("abcd"), Value("wxyz")), 0.9);
}

TEST(CellDistanceCappedTest, ExactWheneverWithinCap) {
  // Differential contract: whenever the true distance fits under the
  // cap, the capped call is bit-identical to CellDistance and leaves
  // `clipped` untouched; otherwise it returns a lower bound and sets
  // `clipped`. Exercised over random strings and every cap in [0, 1].
  Table t = CitizensDirty();
  DistanceModel model(t);
  Rng rng(2024);
  auto random_string = [&rng]() {
    std::string s;
    size_t len = rng.Index(14);
    for (size_t i = 0; i < len; ++i) {
      s += static_cast<char>('a' + rng.Index(4));
    }
    return s;
  };
  for (int iter = 0; iter < 300; ++iter) {
    Value a{random_string()};
    Value b{random_string()};
    double exact = model.CellDistance(0, a, b);
    for (double cap : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 2.0}) {
      bool clipped = false;
      double capped = model.CellDistanceCapped(0, a, b, cap, &clipped);
      if (clipped) {
        EXPECT_LE(capped, exact) << a.ToString() << " / " << b.ToString()
                                 << " cap=" << cap;
        EXPECT_GT(exact, cap);
      } else {
        // Bit-identical, not just approximately equal.
        EXPECT_EQ(capped, exact) << a.ToString() << " / " << b.ToString()
                                 << " cap=" << cap;
      }
    }
  }
}

TEST(CellDistanceCappedTest, NonEditMetricsAlwaysExact) {
  Table t = CitizensDirty();
  DistanceModel model(t);
  int level = t.schema().IndexOf("Level");
  bool clipped = false;
  // Numeric kAuto resolves to Euclidean: no bounded kernel, exact even
  // under a tiny cap.
  EXPECT_DOUBLE_EQ(
      model.CellDistanceCapped(level, Value(3.0), Value(1.0), 0.01, &clipped),
      0.25);
  EXPECT_FALSE(clipped);
  model.SetColumnMetric(0, ColumnMetric::kJaroWinkler);
  EXPECT_EQ(model.CellDistanceCapped(0, Value("MARTHA"), Value("MARHTA"),
                                     0.01, &clipped),
            model.CellDistance(0, Value("MARTHA"), Value("MARHTA")));
  EXPECT_FALSE(clipped);
}

TEST(CellDistanceCappedTest, TrivialCases) {
  Table t = CitizensDirty();
  DistanceModel model(t);
  bool clipped = false;
  EXPECT_DOUBLE_EQ(
      model.CellDistanceCapped(0, Value("x"), Value("x"), 0.0, &clipped), 0.0);
  EXPECT_DOUBLE_EQ(
      model.CellDistanceCapped(0, Value(), Value("x"), 0.0, &clipped), 1.0);
  EXPECT_FALSE(clipped);
  // Distant strings under a tiny cap: clipped, lower bound positive.
  double d = model.CellDistanceCapped(0, Value("aaaaaaaaaa"),
                                      Value("bbbbbbbbbb"), 0.2, &clipped);
  EXPECT_TRUE(clipped);
  EXPECT_GT(d, 0.2);
  EXPECT_LE(d, 1.0);
}

TEST(ProjectionDistanceTest, PaperExample5) {
  // dist(t4^phi1, t6^phi1) = 0.5 * dist(Masters, Masers)
  //                        + 0.5 * dist(4, 4) = 0.5 / 7 ~= 0.07.
  Table t = CitizensDirty();
  DistanceModel model(t);
  std::vector<FD> fds = CitizensFDs(t.schema());
  const FD& phi1 = fds[0];
  double d = model.ProjectionDistance(phi1, t.row(3), t.row(5), 0.5, 0.5);
  EXPECT_NEAR(d, 0.5 / 7.0, 1e-12);
  EXPECT_NEAR(d, 0.07, 0.005);  // the paper rounds to .07
}

TEST(ProjectionDistanceTest, WeightsScaleSides) {
  Table t = CitizensDirty();
  DistanceModel model(t);
  std::vector<FD> fds = CitizensFDs(t.schema());
  const FD& phi2 = fds[1];  // City -> State
  // t5 (Boston, NY) vs t1 (New York, NY): LHS-only difference.
  double lhs_only = model.ProjectionDistance(phi2, t.row(4), t.row(0), 1.0, 0.0);
  double rhs_only = model.ProjectionDistance(phi2, t.row(4), t.row(0), 0.0, 1.0);
  EXPECT_GT(lhs_only, 0.0);
  EXPECT_DOUBLE_EQ(rhs_only, 0.0);
  double mixed = model.ProjectionDistance(phi2, t.row(4), t.row(0), 0.7, 0.3);
  EXPECT_NEAR(mixed, 0.7 * lhs_only, 1e-12);
}

TEST(RepairCostTest, SumsUnweightedOverColumns) {
  // Eq. 3 over chosen columns; weightless.
  Table t = CitizensDirty();
  DistanceModel model(t);
  std::vector<FD> fds = CitizensFDs(t.schema());
  const FD& phi1 = fds[0];
  double cost = model.RepairCost(phi1.attrs(), t.row(3), t.row(5));
  EXPECT_NEAR(cost, 1.0 / 7.0, 1e-12);  // Education differs, Level equal
  // Restricting to one column.
  double education_only =
      model.RepairCost({t.schema().IndexOf("Education")}, t.row(3), t.row(5));
  EXPECT_NEAR(education_only, 1.0 / 7.0, 1e-12);
}

TEST(RepairCostTest, ZeroForIdenticalRows) {
  Table t = CitizensDirty();
  DistanceModel model(t);
  std::vector<int> all_cols;
  for (int c = 0; c < t.num_columns(); ++c) all_cols.push_back(c);
  EXPECT_DOUBLE_EQ(model.RepairCost(all_cols, t.row(0), t.row(0)), 0.0);
}

}  // namespace
}  // namespace ftrepair
