#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/multi_common.h"
#include "core/target_tree.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::CitizensDirty;
using testing_util::CitizensFDs;

// The paper's Example 13 setup: independent sets for phi2 (City ->
// State) and phi3 (City, Street -> District) over Table 1.
struct Example13 {
  Table table = CitizensDirty();
  std::vector<FD> fds = CitizensFDs(table.schema());
  std::vector<TargetTree::LevelInput> inputs;
  std::vector<int> cols;

  Example13() {
    TargetTree::LevelInput phi2;
    phi2.fd = &fds[1];
    phi2.elements = {{Value("New York"), Value("NY")},
                     {Value("Boston"), Value("MA")}};
    TargetTree::LevelInput phi3;
    phi3.fd = &fds[2];
    phi3.elements = {
        {Value("New York"), Value("Main"), Value("Manhattan")},
        {Value("New York"), Value("Western"), Value("Queens")},
        {Value("Boston"), Value("Main"), Value("Financial")},
        {Value("Boston"), Value("Arlingto"), Value("Brookside")}};
    inputs = {phi2, phi3};
    // Component columns: City(3), Street(4), District(5), State(6).
    cols = {3, 4, 5, 6};
  }
};

std::vector<Value> Target(const char* city, const char* street,
                          const char* district, const char* state) {
  return {Value(city), Value(street), Value(district), Value(state)};
}

TEST(TargetTreeTest, Example13BuildsFourTargets) {
  Example13 ex;
  TargetTree tree =
      std::move(TargetTree::Build(ex.inputs, ex.cols, 100000)).ValueOrDie();
  EXPECT_EQ(tree.num_targets(), 4u);
  std::set<std::vector<Value>> targets;
  for (auto& t : tree.EnumerateTargets()) targets.insert(t);
  EXPECT_TRUE(targets.count(Target("New York", "Main", "Manhattan", "NY")));
  EXPECT_TRUE(targets.count(Target("New York", "Western", "Queens", "NY")));
  EXPECT_TRUE(targets.count(Target("Boston", "Main", "Financial", "MA")));
  EXPECT_TRUE(
      targets.count(Target("Boston", "Arlingto", "Brookside", "MA")));
}

TEST(TargetTreeTest, Example14SearchRepairsT4) {
  // t4 = (New York, Western, Queens, MA); the best target keeps the
  // first three values and fixes State to NY, at cost dist(NY, MA) = 1.
  Example13 ex;
  TargetTree tree =
      std::move(TargetTree::Build(ex.inputs, ex.cols, 100000)).ValueOrDie();
  DistanceModel model(ex.table);
  std::vector<Value> t4_proj = Target("New York", "Western", "Queens", "MA");
  double cost = 0;
  TargetTree::SearchStats stats;
  std::vector<Value> best = tree.FindBest(t4_proj, model, &cost, &stats);
  EXPECT_EQ(best, Target("New York", "Western", "Queens", "NY"));
  EXPECT_DOUBLE_EQ(cost, 1.0);  // dist("MA", "NY") = 1
  EXPECT_GT(stats.nodes_visited, 0u);
}

TEST(TargetTreeTest, Example3SearchRepairsT5) {
  // t5 = (Boston, Main, Manhattan, NY): joint repair picks
  // (New York, Main, Manhattan, NY) — changing City only (§1 Example 3).
  Example13 ex;
  TargetTree tree =
      std::move(TargetTree::Build(ex.inputs, ex.cols, 100000)).ValueOrDie();
  DistanceModel model(ex.table);
  std::vector<Value> t5_proj = Target("Boston", "Main", "Manhattan", "NY");
  double cost = 0;
  TargetTree::SearchStats stats;
  std::vector<Value> best = tree.FindBest(t5_proj, model, &cost, &stats);
  EXPECT_EQ(best, Target("New York", "Main", "Manhattan", "NY"));
}

TEST(TargetTreeTest, SearchMatchesLinearScan) {
  Example13 ex;
  TargetTree tree =
      std::move(TargetTree::Build(ex.inputs, ex.cols, 100000)).ValueOrDie();
  DistanceModel model(ex.table);
  std::vector<std::vector<Value>> targets = tree.EnumerateTargets();
  // Probe with every tuple of the table.
  for (int r = 0; r < ex.table.num_rows(); ++r) {
    std::vector<Value> proj;
    for (int c : ex.cols) proj.push_back(ex.table.cell(r, c));
    double tree_cost = 0;
    tree.FindBest(proj, model, &tree_cost, nullptr);
    double linear_cost = 0;
    FindBestTargetLinear(targets, proj, ex.cols, model, &linear_cost);
    EXPECT_NEAR(tree_cost, linear_cost, 1e-12) << "row " << r;
  }
}

TEST(TargetTreeTest, DisagreeingSetsYieldEmptyJoin) {
  Example13 ex;
  // Restrict phi3 to a Boston element but phi2 to New York only: the
  // join on City is empty.
  ex.inputs[0].elements = {{Value("New York"), Value("NY")}};
  ex.inputs[1].elements = {
      {Value("Boston"), Value("Main"), Value("Financial")}};
  auto result = TargetTree::Build(ex.inputs, ex.cols, 100000);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(TargetTreeTest, NodeCapReturnsResourceExhausted) {
  Example13 ex;
  auto result = TargetTree::Build(ex.inputs, ex.cols, 3);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
}

TEST(TargetTreeTest, SingleLevelTree) {
  Example13 ex;
  std::vector<TargetTree::LevelInput> inputs = {ex.inputs[0]};
  std::vector<int> cols = {3, 6};  // City, State
  TargetTree tree =
      std::move(TargetTree::Build(inputs, cols, 1000)).ValueOrDie();
  EXPECT_EQ(tree.num_targets(), 2u);
  DistanceModel model(ex.table);
  double cost = 0;
  std::vector<Value> best = tree.FindBest(
      {Value("Boton"), Value("MA")}, model, &cost, nullptr);
  EXPECT_EQ(best, (std::vector<Value>{Value("Boston"), Value("MA")}));
  EXPECT_NEAR(cost, 1.0 / 6.0, 1e-12);  // edit(Boton, Boston) = 1/6
}

TEST(TargetTreeTest, UncoveredColumnIsError) {
  Example13 ex;
  std::vector<TargetTree::LevelInput> inputs = {ex.inputs[0]};
  // Street (4) is covered by no FD here.
  auto result = TargetTree::Build(inputs, {3, 4, 6}, 1000);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(TargetTreeTest, NoInputsIsError) {
  auto result = TargetTree::Build({}, {0}, 10);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

}  // namespace
}  // namespace ftrepair
