// End-to-end property suite: generate -> inject -> repair -> verify,
// across datasets, algorithms and seeds.

#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "core/repairer.h"
#include "data/csv.h"
#include "detect/detector.h"
#include "eval/experiment.h"
#include "eval/quality.h"
#include "gen/error_injector.h"
#include "gen/hosp_gen.h"
#include "gen/tax_gen.h"

namespace ftrepair {
namespace {

struct PipelineCase {
  bool hosp;
  RepairAlgorithm algorithm;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<PipelineCase>& info) {
  std::string name = info.param.hosp ? "Hosp" : "Tax";
  name += RepairAlgorithmName(info.param.algorithm);
  name += "Seed" + std::to_string(info.param.seed);
  return name;
}

class PipelineTest : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineTest, RepairIsFTConsistentValidAndUseful) {
  const PipelineCase& param = GetParam();
  Dataset ds =
      param.hosp
          ? std::move(GenerateHosp({.num_rows = 400, .seed = 7}))
                .ValueOrDie()
          : std::move(GenerateTax({.num_rows = 400, .seed = 7})).ValueOrDie();
  NoiseOptions noise;
  noise.error_rate = 0.04;
  noise.seed = param.seed;
  auto dirty_result = InjectErrors(ds.clean, ds.fds, noise, nullptr);
  ASSERT_TRUE(dirty_result.ok());
  Table dirty = std::move(dirty_result).value();

  RepairOptions options;
  options.algorithm = param.algorithm;
  options.w_l = ds.recommended_w_l;
  options.w_r = ds.recommended_w_r;
  for (const auto& [name, tau] : ds.recommended_tau) {
    options.tau_by_fd[name] = tau;
  }
  Repairer repairer(options);
  auto repair_result = repairer.Repair(dirty, ds.fds);
  ASSERT_TRUE(repair_result.ok()) << repair_result.status().ToString();
  const RepairResult& result = repair_result.value();

  // (1) FT-consistency (unless a target join came up empty).
  if (!result.stats.join_empty) {
    EXPECT_EQ(result.stats.ft_violations_after, 0u);
  }

  // (2) Close-world validity: every new cell value existed in the dirty
  //     table's column domain.
  for (const CellChange& change : result.changes) {
    std::vector<Value> domain = dirty.ActiveDomain(change.col);
    EXPECT_TRUE(std::binary_search(domain.begin(), domain.end(),
                                   change.new_value))
        << "column " << change.col;
  }

  // (3) Usefulness: the repair recovers a meaningful share of the
  //     injected errors with good precision (loose CI floors; the bench
  //     harness tracks the real curves).
  Quality q = EvaluateRepair(dirty, result.repaired, ds.clean);
  EXPECT_GT(q.errors, 0.0);
  EXPECT_GE(q.precision, 0.5) << "P=" << q.precision << " R=" << q.recall;
  EXPECT_GE(q.recall, 0.45) << "P=" << q.precision << " R=" << q.recall;
}

INSTANTIATE_TEST_SUITE_P(
    Pipelines, PipelineTest,
    ::testing::Values(
        PipelineCase{true, RepairAlgorithm::kGreedy, 1},
        PipelineCase{true, RepairAlgorithm::kGreedy, 2},
        PipelineCase{true, RepairAlgorithm::kApproJoin, 1},
        PipelineCase{true, RepairAlgorithm::kExact, 1},
        PipelineCase{false, RepairAlgorithm::kGreedy, 1},
        PipelineCase{false, RepairAlgorithm::kGreedy, 2},
        PipelineCase{false, RepairAlgorithm::kApproJoin, 1},
        PipelineCase{false, RepairAlgorithm::kExact, 1}),
    CaseName);

TEST(IntegrationTest, OurMethodsBeatBaselinesOnF1) {
  // The paper's headline claim (Figs. 11-13, Table 3): the cost-based
  // FT repairs dominate NADEEF/URM/Llunatic on quality.
  for (bool hosp : {true, false}) {
    Dataset ds = hosp ? std::move(GenerateHosp({.num_rows = 800, .seed = 3}))
                            .ValueOrDie()
                      : std::move(GenerateTax({.num_rows = 800, .seed = 3}))
                            .ValueOrDie();
    ExperimentConfig config;
    config.num_rows = 800;
    config.noise.error_rate = 0.04;
    config.noise.seed = 17;
    config.repair.compute_violation_stats = false;
    auto f1 = [&](SystemUnderTest system) {
      auto row = RunExperiment(ds, system, config);
      EXPECT_TRUE(row.ok()) << row.status().ToString();
      return row.ok() ? row.value().quality.f1 : 0.0;
    };
    double greedy = f1(SystemUnderTest::kGreedy);
    double nadeef = f1(SystemUnderTest::kNadeef);
    double urm = f1(SystemUnderTest::kUrm);
    double llunatic = f1(SystemUnderTest::kLlunatic);
    EXPECT_GT(greedy, nadeef) << (hosp ? "HOSP" : "Tax");
    EXPECT_GT(greedy, urm) << (hosp ? "HOSP" : "Tax");
    EXPECT_GT(greedy, llunatic) << (hosp ? "HOSP" : "Tax");
  }
}

TEST(IntegrationTest, RecallGrowsWithMoreFDs) {
  // Fig. 6 shape: more constraints detect more errors.
  Dataset ds =
      std::move(GenerateHosp({.num_rows = 600, .seed = 5})).ValueOrDie();
  ExperimentConfig config;
  config.num_rows = 600;
  config.noise.error_rate = 0.04;
  config.noise.seed = 11;
  config.repair.compute_violation_stats = false;
  config.num_fds = 2;
  double recall_few =
      std::move(RunExperiment(ds, SystemUnderTest::kGreedy, config))
          .ValueOrDie()
          .quality.recall;
  config.num_fds = 9;
  double recall_all =
      std::move(RunExperiment(ds, SystemUnderTest::kGreedy, config))
          .ValueOrDie()
          .quality.recall;
  EXPECT_GT(recall_all, recall_few);
}

TEST(IntegrationTest, CsvRoundTripOfRepairedTable) {
  Dataset ds =
      std::move(GenerateTax({.num_rows = 200, .seed = 5})).ValueOrDie();
  NoiseOptions noise;
  noise.error_rate = 0.04;
  Table dirty =
      std::move(InjectErrors(ds.clean, ds.fds, noise, nullptr)).ValueOrDie();
  RepairOptions options;
  options.w_l = ds.recommended_w_l;
  options.w_r = ds.recommended_w_r;
  for (const auto& [name, tau] : ds.recommended_tau) {
    options.tau_by_fd[name] = tau;
  }
  Repairer repairer(options);
  RepairResult result =
      std::move(repairer.Repair(dirty, ds.fds)).ValueOrDie();
  // Serialize and re-parse; the repaired instance must survive.
  std::string csv = WriteCsvString(result.repaired);
  Table reparsed = std::move(ReadCsvString(csv)).ValueOrDie();
  EXPECT_EQ(reparsed.num_rows(), result.repaired.num_rows());
}

}  // namespace
}  // namespace ftrepair
