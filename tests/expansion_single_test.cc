#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/expansion_single.h"
#include "core/greedy_single.h"
#include "test_util.h"

namespace ftrepair {
namespace {

using testing_util::RandomFDTable;

bool IsIndependent(const ViolationGraph& g, const std::vector<int>& set) {
  std::set<int> members(set.begin(), set.end());
  for (int v : set) {
    for (const ViolationGraph::Edge& e : g.Neighbors(v)) {
      if (members.count(e.to)) return false;
    }
  }
  return true;
}

bool IsMaximal(const ViolationGraph& g, const std::vector<int>& set) {
  if (!IsIndependent(g, set)) return false;
  std::set<int> members(set.begin(), set.end());
  for (int v = 0; v < g.num_patterns(); ++v) {
    if (members.count(v)) continue;
    bool conflicts = false;
    for (const ViolationGraph::Edge& e : g.Neighbors(v)) {
      if (members.count(e.to)) {
        conflicts = true;
        break;
      }
    }
    if (!conflicts) return false;  // could be added
  }
  return true;
}

// Brute-force optimal repair cost: enumerate all subsets (graph must be
// small), keep maximal independent ones, evaluate.
double BruteForceOptimal(const ViolationGraph& g) {
  int n = g.num_patterns();
  double best = ViolationGraph::kInfinity;
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<int> set;
    for (int v = 0; v < n; ++v) {
      if (mask & (1 << v)) set.push_back(v);
    }
    if (!IsMaximal(g, set)) continue;
    std::vector<int> target;
    double cost = EvaluateIndependentSet(g, set, &target);
    best = std::min(best, cost);
  }
  return best;
}

ViolationGraph GraphFromTable(const Table& t, const FD& fd,
                              const DistanceModel& model, double tau) {
  return ViolationGraph::Build(BuildPatterns(t, fd.attrs()), fd, model,
                               FTOptions{0.5, 0.5, tau});
}

TEST(EnumerateMISTest, FindsAllSetsOfATriangleWithTail) {
  // Manual graph via a table: patterns a~b~c mutually close (triangle)
  // and d adjacent only to c is hard to construct via strings; instead
  // verify counts on random instances against subset brute force.
  Table t = RandomFDTable(30, 2, 4, 8, 3);
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  ViolationGraph g = GraphFromTable(t, fd, model, 0.6);
  ASSERT_LE(g.num_patterns(), 20);
  ExpansionConfig config;
  config.enumerate_all = true;
  uint64_t expanded = 0, pruned = 0;
  auto sets = std::move(EnumerateMaximalIndependentSets(g, config, &expanded,
                                                        &pruned))
                  .ValueOrDie();
  // Every returned set is maximal independent; and the count matches
  // brute force.
  std::set<std::vector<int>> unique_sets;
  for (const auto& set : sets) {
    EXPECT_TRUE(IsMaximal(g, set));
    unique_sets.insert(set);
  }
  EXPECT_EQ(unique_sets.size(), sets.size()) << "duplicates returned";
  size_t brute = 0;
  int n = g.num_patterns();
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<int> set;
    for (int v = 0; v < n; ++v) {
      if (mask & (1 << v)) set.push_back(v);
    }
    if (IsMaximal(g, set)) ++brute;
  }
  EXPECT_EQ(sets.size(), brute);
}

TEST(ExpansionSingleTest, OptimalOnPaperExample8) {
  // Expansion over phi1 of Table 1: tuples t6, t8 repaired to t4's
  // pattern and t9, t10 to t1's (Example 8 outcome). tau = 0.30 keeps
  // the graph identical to Fig. 2 (0.35 would add a spurious
  // (Bachelors,3)-(Masters,4) edge at 0.34 under our edit distance).
  Table t = testing_util::CitizensDirty();
  std::vector<FD> fds = testing_util::CitizensFDs(t.schema());
  DistanceModel model(t);
  ViolationGraph g = GraphFromTable(t, fds[0], model, 0.30);
  SingleFDSolution solution =
      std::move(SolveExpansionSingle(g, ExpansionConfig{})).ValueOrDie();
  EXPECT_TRUE(IsMaximal(g, solution.chosen_set));
  auto pattern_of = [&g](const char* education, double level) {
    for (int i = 0; i < g.num_patterns(); ++i) {
      if (g.pattern(i).values[0] == Value(education) &&
          g.pattern(i).values[1] == Value(level)) {
        return i;
      }
    }
    return -1;
  };
  int bachelors3 = pattern_of("Bachelors", 3);
  int masters4 = pattern_of("Masters", 4);
  int masers4 = pattern_of("Masers", 4);
  int masters3 = pattern_of("Masters", 3);
  int bachelors1 = pattern_of("Bachelors", 1);
  int bachelers3 = pattern_of("Bachelers", 3);
  std::set<int> chosen(solution.chosen_set.begin(),
                       solution.chosen_set.end());
  EXPECT_TRUE(chosen.count(bachelors3));
  EXPECT_TRUE(chosen.count(masters4));
  // Erroneous patterns are repaired to their correct anchors.
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(masers4)], masters4);
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(masters3)], masters4);
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(bachelors1)],
            bachelors3);
  EXPECT_EQ(solution.repair_target[static_cast<size_t>(bachelers3)],
            bachelors3);
}

class ExpansionOptimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExpansionOptimalityTest, MatchesBruteForceOnRandomInstances) {
  Table t = RandomFDTable(25, 2, 4, 6, GetParam());
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  ViolationGraph g = GraphFromTable(t, fd, model, 0.6);
  if (g.num_patterns() > 18) GTEST_SKIP() << "instance too large for 2^n";
  SingleFDSolution solution =
      std::move(SolveExpansionSingle(g, ExpansionConfig{})).ValueOrDie();
  EXPECT_TRUE(IsMaximal(g, solution.chosen_set));
  double brute = BruteForceOptimal(g);
  EXPECT_NEAR(solution.cost, brute, 1e-9);
  // Exact never exceeds greedy (Theorem 2: expansion is optimal).
  SingleFDSolution greedy = SolveGreedySingle(g);
  EXPECT_LE(solution.cost, greedy.cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpansionOptimalityTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(ExpansionSingleTest, RepairTargetsAreChosenNeighbors) {
  Table t = RandomFDTable(40, 2, 5, 12, 42);
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  ViolationGraph g = GraphFromTable(t, fd, model, 0.6);
  SingleFDSolution solution =
      std::move(SolveExpansionSingle(g, ExpansionConfig{})).ValueOrDie();
  std::set<int> chosen(solution.chosen_set.begin(),
                       solution.chosen_set.end());
  for (int v = 0; v < g.num_patterns(); ++v) {
    int target = solution.repair_target[static_cast<size_t>(v)];
    if (chosen.count(v)) {
      EXPECT_EQ(target, -1);
    } else {
      ASSERT_GE(target, 0);
      EXPECT_TRUE(chosen.count(target));
      bool is_neighbor = false;
      for (const ViolationGraph::Edge& e : g.Neighbors(v)) {
        if (e.to == target) is_neighbor = true;
      }
      EXPECT_TRUE(is_neighbor);
    }
  }
}

TEST(ExpansionSingleTest, FrontierCapReturnsResourceExhausted) {
  // Many independent conflict pairs in ONE connected component are hard
  // to build from strings; instead cap the frontier at 1 on a graph
  // with a component that branches.
  Table t = RandomFDTable(40, 2, 4, 14, 11);
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  ViolationGraph g = GraphFromTable(t, fd, model, 0.9);
  ExpansionConfig config;
  config.enumerate_all = true;
  config.max_frontier = 1;
  uint64_t expanded = 0, pruned = 0;
  auto result =
      EnumerateMaximalIndependentSets(g, config, &expanded, &pruned);
  // Either the graph is trivially small or the cap trips.
  if (!result.ok()) {
    EXPECT_TRUE(result.status().IsResourceExhausted());
  }
}

TEST(ExpansionSingleTest, EmptyGraph) {
  Table t(Schema({{"a", ValueType::kString}, {"b", ValueType::kString}}));
  FD fd = std::move(FD::Make({0}, {1})).ValueOrDie();
  DistanceModel model(t);
  ViolationGraph g = GraphFromTable(t, fd, model, 0.3);
  SingleFDSolution solution =
      std::move(SolveExpansionSingle(g, ExpansionConfig{})).ValueOrDie();
  EXPECT_TRUE(solution.chosen_set.empty());
  EXPECT_DOUBLE_EQ(solution.cost, 0.0);
}

TEST(EvaluateIndependentSetTest, NonMaximalSetIsInfinity) {
  Table t = testing_util::CitizensDirty();
  std::vector<FD> fds = testing_util::CitizensFDs(t.schema());
  DistanceModel model(t);
  ViolationGraph g = GraphFromTable(t, fds[0], model, 0.35);
  // The empty set is independent but not maximal (unless no patterns).
  std::vector<int> target;
  EXPECT_EQ(EvaluateIndependentSet(g, {}, &target),
            ViolationGraph::kInfinity);
}

}  // namespace
}  // namespace ftrepair
