// Tax-record audit: demonstrates joint multi-constraint repair on the
// Tax workload's 8-FD connected component (zip / city / state / area
// code / exemptions), comparing the per-FD heuristic (Appro-M) against
// the synchronization-aware joint greedy (Greedy-M).
//
//   ./build/examples/tax_audit [rows]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "constraint/fd_graph.h"
#include "core/repairer.h"
#include "detect/detector.h"
#include "eval/quality.h"
#include "eval/report.h"
#include "gen/error_injector.h"
#include "gen/tax_gen.h"

int main(int argc, char** argv) {
  using namespace ftrepair;
  int rows = argc > 1 ? std::atoi(argv[1]) : 1500;

  Dataset dataset =
      std::move(GenerateTax({.num_rows = rows, .seed = 11})).ValueOrDie();

  // Show the FD graph decomposition (§4.1).
  FDGraph fd_graph(dataset.fds);
  std::printf("Tax FD graph components:\n");
  for (const auto& component : fd_graph.Components()) {
    std::printf("  {");
    for (size_t i = 0; i < component.size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  dataset.fds[static_cast<size_t>(component[i])].name()
                      .c_str());
    }
    std::printf("}\n");
  }
  std::printf("\n");

  NoiseOptions noise;
  noise.error_rate = 0.04;
  noise.seed = 23;
  NoiseReport noise_report;
  Table dirty =
      std::move(InjectErrors(dataset.clean, dataset.fds, noise,
                             &noise_report))
          .ValueOrDie();
  std::printf("Injected %d dirty cells (%d LHS swaps, %d RHS swaps, "
              "%d typos)\n\n",
              noise_report.cells_dirtied, noise_report.lhs_errors,
              noise_report.rhs_errors, noise_report.typos);

  RepairOptions base;
  base.w_l = dataset.recommended_w_l;
  base.w_r = dataset.recommended_w_r;
  for (const auto& [name, tau] : dataset.recommended_tau) {
    base.tau_by_fd[name] = tau;
  }
  base.compute_violation_stats = true;

  Report report("Tax audit: per-FD vs joint repair");
  report.SetHeader({"algorithm", "precision", "recall", "f1",
                    "violations left", "cells changed"});
  for (RepairAlgorithm algorithm :
       {RepairAlgorithm::kApproJoin, RepairAlgorithm::kGreedy}) {
    RepairOptions options = base;
    options.algorithm = algorithm;
    Repairer repairer(options);
    RepairResult result =
        std::move(repairer.Repair(dirty, dataset.fds)).ValueOrDie();
    Quality q = EvaluateRepair(dirty, result.repaired, dataset.clean);
    report.AddRow({RepairAlgorithmName(algorithm), Report::Num(q.precision),
                   Report::Num(q.recall), Report::Num(q.f1),
                   std::to_string(result.stats.ft_violations_after),
                   std::to_string(result.stats.cells_changed)});
  }
  report.Print(std::cout);
  return EXIT_SUCCESS;
}
