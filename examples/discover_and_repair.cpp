// Discover-then-repair: the full adoption path when no constraints are
// known up front. Approximate FD discovery (g3 tolerance above the
// noise level) recovers the rules from the *dirty* instance itself;
// the fault-tolerant repair then enforces them.
//
//   ./build/examples/discover_and_repair [rows]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include <unordered_map>

#include "core/repairer.h"
#include "detect/detector.h"
#include "detect/threshold.h"
#include "discovery/fd_discovery.h"
#include "eval/quality.h"
#include "eval/report.h"
#include "gen/error_injector.h"
#include "gen/hosp_gen.h"

int main(int argc, char** argv) {
  using namespace ftrepair;
  int rows = argc > 1 ? std::atoi(argv[1]) : 1200;

  Dataset dataset =
      std::move(GenerateHosp({.num_rows = rows, .seed = 7})).ValueOrDie();
  NoiseOptions noise;
  noise.error_rate = 0.04;
  noise.seed = 42;
  Table dirty =
      std::move(InjectErrors(dataset.clean, dataset.fds, noise, nullptr))
          .ValueOrDie();

  // 1. Discover approximate FDs on the dirty data itself.
  DiscoveryOptions discovery;
  discovery.max_lhs_size = 1;
  discovery.max_g3_error = 0.08;       // above the 4% noise level
  discovery.max_lhs_distinct_ratio = 0.5;
  // Numeric measure columns make poor keys (tiny normalized distances
  // between legitimate values defeat similarity detection): exclude
  // them from the lattice, as a practitioner would.
  for (int c = 0; c < dirty.num_columns(); ++c) {
    if (dirty.schema().column(c).type == ValueType::kNumber) {
      discovery.excluded_columns.push_back(c);
    }
  }
  auto discovered = std::move(DiscoverFDs(dirty, discovery)).ValueOrDie();

  // Sanity-check every discovered FD before trusting it for repair:
  // suggest a tau with the distance-gap heuristic and measure the
  // violation volume it implies. A constraint whose violations vastly
  // exceed the plausible noise level is either not a real rule or its
  // value space is too tightly packed for similarity detection — a
  // practitioner drops it (§2.1: "we can conservatively decrease tau").
  DistanceModel model(dirty);
  ThresholdOptions threshold_options;
  threshold_options.w_l = 0.7;
  threshold_options.w_r = 0.3;
  uint64_t violation_budget = static_cast<uint64_t>(rows) * 2;

  Report table("Discovered approximate FDs (g3 <= 0.08)");
  table.SetHeader({"FD", "g3 error", "tau", "FT-violations", "kept"});
  std::vector<FD> fds;
  std::unordered_map<std::string, double> taus;
  for (const DiscoveredFD& d : discovered) {
    double tau = SuggestThreshold(dirty, d.fd, model, threshold_options);
    uint64_t violations = CountFTViolations(
        dirty, d.fd, model, FTOptions{0.7, 0.3, tau});
    bool keep = violations <= violation_budget;
    table.AddRow({d.fd.ToString(dirty.schema()), Report::Num(d.g3_error),
                  Report::Num(tau), std::to_string(violations),
                  keep ? "yes" : "no"});
    if (keep) {
      taus[d.fd.name()] = tau;
      fds.push_back(d.fd);
    }
  }
  table.Print(std::cout);

  // 2. Repair against the discovered constraints.
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kGreedy;
  options.w_l = 0.7;
  options.w_r = 0.3;
  options.tau_by_fd = taus;  // the vetted per-FD thresholds from above
  options.compute_violation_stats = false;
  Repairer repairer(options);
  RepairResult result = std::move(repairer.Repair(dirty, fds)).ValueOrDie();

  Quality q = EvaluateRepair(dirty, result.repaired, dataset.clean);
  std::printf(
      "Repair with %zu discovered FDs: precision %.3f, recall %.3f "
      "(%d cells changed)\n",
      fds.size(), q.precision, q.recall, result.stats.cells_changed);

  // 3. For reference: the same repair with the planted ground-truth FDs.
  RepairOptions reference = options;
  for (const auto& [name, tau] : dataset.recommended_tau) {
    reference.tau_by_fd[name] = tau;
  }
  Repairer ref_repairer(reference);
  RepairResult ref =
      std::move(ref_repairer.Repair(dirty, dataset.fds)).ValueOrDie();
  Quality ref_q = EvaluateRepair(dirty, ref.repaired, dataset.clean);
  std::printf("Reference with planted FDs:     precision %.3f, recall %.3f\n",
              ref_q.precision, ref_q.recall);
  return EXIT_SUCCESS;
}
