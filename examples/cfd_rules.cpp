// Conditional FDs: the §2 extension. A constant CFD pins New York
// citizens to State = NY; a variable tableau row applies fault-tolerant
// FD semantics to everything else.
//
//   ./build/examples/cfd_rules

#include <cstdio>
#include <cstdlib>

#include "constraint/cfd.h"
#include "core/repairer.h"
#include "data/csv.h"

namespace {

constexpr const char* kCitizensCsv =
    "Name,Education,Level,City,Street,District,State\n"
    "Janaina,Bachelors,3,New York,Main,Manhattan,NY\n"
    "Aloke,Bachelors,3,New York,Main,Manhattan,NY\n"
    "Paulo,Masters,4,New York,Western,Queens,MA\n"
    "Gara,Masters,4,Boston,Main,Financial,MA\n"
    "Mitchell,HS-grad,9,Boston,Main,Financial,MA\n"
    "Pavol,Masters,4,Boton,Main,Financial,MA\n";

}  // namespace

int main() {
  using namespace ftrepair;
  Table dirty = std::move(ReadCsvString(kCitizensCsv)).ValueOrDie();
  const Schema& schema = dirty.schema();

  FD fd = std::move(FD::Make({schema.IndexOf("City")},
                             {schema.IndexOf("State")}, "phi2"))
              .ValueOrDie();
  std::vector<PatternRow> tableau;
  tableau.push_back({Value("New York"), Value("NY")});   // constant rule
  tableau.push_back({std::nullopt, std::nullopt});       // variable rule
  CFD cfd = std::move(CFD::Make(std::move(fd), std::move(tableau),
                                "ny_rule"))
                .ValueOrDie();

  RepairOptions options;
  options.tau_by_fd = {{"phi2", 0.5}};
  Repairer repairer(options);
  RepairResult result =
      std::move(repairer.RepairCFDs(dirty, {cfd})).ValueOrDie();

  std::printf("CFD repair changed %d cells:\n", result.stats.cells_changed);
  for (const CellChange& change : result.changes) {
    std::printf("  row %d %-8s %-10s -> %s\n", change.row,
                schema.column(change.col).name.c_str(),
                change.old_value.ToString().c_str(),
                change.new_value.ToString().c_str());
  }
  std::printf("\n%s", WriteCsvString(result.repaired).c_str());
  return EXIT_SUCCESS;
}
