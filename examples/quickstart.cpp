// Quickstart: repair the paper's running example (Table 1, US citizens)
// with the cost-based fault-tolerant model.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <cstdlib>

#include "constraint/fd_parser.h"
#include "core/repairer.h"
#include "data/csv.h"

namespace {

// Table 1 of the paper, with its errors (t4..t6, t8..t10).
constexpr const char* kCitizensCsv =
    "Name,Education,Level,City,Street,District,State\n"
    "Janaina,Bachelors,3,New York,Main,Manhattan,NY\n"
    "Aloke,Bachelors,3,New York,Main,Manhattan,NY\n"
    "Jieyu,Bachelors,3,New York,Western,Queens,NY\n"
    "Paulo,Masters,4,New York,Western,Queens,MA\n"
    "Zoe,Masters,4,Boston,Main,Manhattan,NY\n"
    "Gara,Masers,4,Boston,Main,Financial,MA\n"
    "Mitchell,HS-grad,9,Boston,Main,Financial,MA\n"
    "Pavol,Masters,3,Boton,Arlingto,Brookside,MA\n"
    "Thilo,Bachelors,1,Boston,Arlingto,Brookside,MA\n"
    "Nenad,Bachelers,3,Boston,Arlingto,Brookside,NY\n";

}  // namespace

int main() {
  using namespace ftrepair;

  // 1. Load the dirty relation.
  auto table_result = ReadCsvString(kCitizensCsv);
  if (!table_result.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 table_result.status().ToString().c_str());
    return EXIT_FAILURE;
  }
  Table dirty = std::move(table_result).value();

  // 2. Declare the integrity constraints (Example 2's three FDs).
  auto fds_result = ParseFDList(
      "phi1: Education -> Level\n"
      "phi2: City -> State\n"
      "phi3: City, Street -> District\n",
      dirty.schema());
  if (!fds_result.ok()) {
    std::fprintf(stderr, "bad FDs: %s\n",
                 fds_result.status().ToString().c_str());
    return EXIT_FAILURE;
  }
  std::vector<FD> fds = std::move(fds_result).value();

  // 3. Configure the repair: fault-tolerance thresholds per constraint.
  RepairOptions options;
  options.algorithm = RepairAlgorithm::kExact;  // optimal on small data
  options.tau_by_fd = {{"phi1", 0.30}, {"phi2", 0.5}, {"phi3", 0.5}};

  // 4. Repair.
  Repairer repairer(options);
  auto repair_result = repairer.Repair(dirty, fds);
  if (!repair_result.ok()) {
    std::fprintf(stderr, "repair failed: %s\n",
                 repair_result.status().ToString().c_str());
    return EXIT_FAILURE;
  }
  const RepairResult& result = repair_result.value();

  // 5. Inspect the outcome.
  std::printf("FT-violations before: %llu, after: %llu\n",
              static_cast<unsigned long long>(
                  result.stats.ft_violations_before),
              static_cast<unsigned long long>(
                  result.stats.ft_violations_after));
  std::printf("cells changed: %d (repair cost %.3f)\n\n",
              result.stats.cells_changed, result.stats.repair_cost);
  for (const CellChange& change : result.changes) {
    std::printf("  t%-2d %-10s %-12s -> %s\n", change.row + 1,
                dirty.schema().column(change.col).name.c_str(),
                change.old_value.ToString().c_str(),
                change.new_value.ToString().c_str());
  }
  std::printf("\nRepaired table:\n%s",
              WriteCsvString(result.repaired).c_str());
  return EXIT_SUCCESS;
}
