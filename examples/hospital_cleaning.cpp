// Hospital data cleaning: the paper's HOSP workload end to end —
// generate a clean instance, dirty it with the §6.1 noise model, repair
// it with each algorithm family and score precision/recall against the
// ground truth.
//
//   ./build/examples/hospital_cleaning [rows] [error_percent]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "eval/experiment.h"
#include "eval/report.h"
#include "gen/hosp_gen.h"

int main(int argc, char** argv) {
  using namespace ftrepair;
  int rows = argc > 1 ? std::atoi(argv[1]) : 2000;
  double error_rate = (argc > 2 ? std::atof(argv[2]) : 4.0) / 100.0;

  auto dataset_result = GenerateHosp({.num_rows = rows, .seed = 7});
  if (!dataset_result.ok()) {
    std::fprintf(stderr, "%s\n", dataset_result.status().ToString().c_str());
    return EXIT_FAILURE;
  }
  Dataset dataset = std::move(dataset_result).value();
  std::printf("HOSP: %d rows, %d attributes, %zu FDs, e%% = %.1f\n\n",
              dataset.clean.num_rows(), dataset.clean.num_columns(),
              dataset.fds.size(), error_rate * 100);
  for (const FD& fd : dataset.fds) {
    std::printf("  %-40s tau = %.2f\n",
                fd.ToString(dataset.clean.schema()).c_str(),
                dataset.recommended_tau.at(fd.name()));
  }
  std::printf("\n");

  ExperimentConfig config;
  config.num_rows = rows;
  config.noise.error_rate = error_rate;
  config.noise.seed = 42;
  config.repair.compute_violation_stats = false;

  Report report("HOSP cleaning results");
  report.SetHeader({"system", "precision", "recall", "f1", "seconds"});
  for (SystemUnderTest system :
       {SystemUnderTest::kExpansion, SystemUnderTest::kGreedy,
        SystemUnderTest::kAppro, SystemUnderTest::kNadeef,
        SystemUnderTest::kUrm, SystemUnderTest::kLlunatic}) {
    auto row = RunExperiment(dataset, system, config);
    if (!row.ok()) {
      std::fprintf(stderr, "%s: %s\n", SystemName(system),
                   row.status().ToString().c_str());
      continue;
    }
    report.AddRow({SystemName(system),
                   Report::Num(row.value().quality.precision),
                   Report::Num(row.value().quality.recall),
                   Report::Num(row.value().quality.f1),
                   Report::Num(row.value().seconds, 2)});
  }
  report.Print(std::cout);
  return EXIT_SUCCESS;
}
