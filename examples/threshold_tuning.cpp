// Threshold tuning: the §2.1 heuristic in action. For each FD of the
// HOSP workload, suggest a fault-tolerance threshold from the sorted
// pairwise-distance gap and compare it against the hand-tuned value the
// generator ships.
//
//   ./build/examples/threshold_tuning [rows]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "detect/detector.h"
#include "detect/threshold.h"
#include "eval/report.h"
#include "gen/error_injector.h"
#include "gen/hosp_gen.h"

int main(int argc, char** argv) {
  using namespace ftrepair;
  int rows = argc > 1 ? std::atoi(argv[1]) : 1000;

  Dataset dataset =
      std::move(GenerateHosp({.num_rows = rows, .seed = 7})).ValueOrDie();
  NoiseOptions noise;
  noise.error_rate = 0.04;
  Table dirty =
      std::move(InjectErrors(dataset.clean, dataset.fds, noise, nullptr))
          .ValueOrDie();
  DistanceModel model(dirty);

  ThresholdOptions topt;
  topt.w_l = dataset.recommended_w_l;
  topt.w_r = dataset.recommended_w_r;

  Report report("Suggested vs recommended tau (HOSP, 4% noise)");
  report.SetHeader({"FD", "suggested", "recommended",
                    "FT-violations@suggested"});
  for (const FD& fd : dataset.fds) {
    double suggested = SuggestThreshold(dirty, fd, model, topt);
    FTOptions opts{topt.w_l, topt.w_r, suggested};
    report.AddRow({fd.ToString(dirty.schema()), Report::Num(suggested, 3),
                   Report::Num(dataset.recommended_tau.at(fd.name()), 2),
                   std::to_string(CountFTViolations(dirty, fd, model, opts))});
  }
  report.Print(std::cout);
  std::printf(
      "The heuristic finds the sorted-distance gap; conservative users\n"
      "can lower the value further to favor precision (see §2.1).\n");
  return EXIT_SUCCESS;
}
