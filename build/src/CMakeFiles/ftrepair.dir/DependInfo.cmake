
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/equivalence.cc" "src/CMakeFiles/ftrepair.dir/baseline/equivalence.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/baseline/equivalence.cc.o.d"
  "/root/repo/src/baseline/llunatic.cc" "src/CMakeFiles/ftrepair.dir/baseline/llunatic.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/baseline/llunatic.cc.o.d"
  "/root/repo/src/baseline/nadeef.cc" "src/CMakeFiles/ftrepair.dir/baseline/nadeef.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/baseline/nadeef.cc.o.d"
  "/root/repo/src/baseline/urm.cc" "src/CMakeFiles/ftrepair.dir/baseline/urm.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/baseline/urm.cc.o.d"
  "/root/repo/src/cli/cli.cc" "src/CMakeFiles/ftrepair.dir/cli/cli.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/cli/cli.cc.o.d"
  "/root/repo/src/common/budget.cc" "src/CMakeFiles/ftrepair.dir/common/budget.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/common/budget.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/ftrepair.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/ftrepair.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/ftrepair.dir/common/status.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/ftrepair.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/common/strings.cc.o.d"
  "/root/repo/src/constraint/cfd.cc" "src/CMakeFiles/ftrepair.dir/constraint/cfd.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/constraint/cfd.cc.o.d"
  "/root/repo/src/constraint/fd.cc" "src/CMakeFiles/ftrepair.dir/constraint/fd.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/constraint/fd.cc.o.d"
  "/root/repo/src/constraint/fd_graph.cc" "src/CMakeFiles/ftrepair.dir/constraint/fd_graph.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/constraint/fd_graph.cc.o.d"
  "/root/repo/src/constraint/fd_parser.cc" "src/CMakeFiles/ftrepair.dir/constraint/fd_parser.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/constraint/fd_parser.cc.o.d"
  "/root/repo/src/core/appro_multi.cc" "src/CMakeFiles/ftrepair.dir/core/appro_multi.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/core/appro_multi.cc.o.d"
  "/root/repo/src/core/expansion_multi.cc" "src/CMakeFiles/ftrepair.dir/core/expansion_multi.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/core/expansion_multi.cc.o.d"
  "/root/repo/src/core/expansion_single.cc" "src/CMakeFiles/ftrepair.dir/core/expansion_single.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/core/expansion_single.cc.o.d"
  "/root/repo/src/core/greedy_multi.cc" "src/CMakeFiles/ftrepair.dir/core/greedy_multi.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/core/greedy_multi.cc.o.d"
  "/root/repo/src/core/greedy_single.cc" "src/CMakeFiles/ftrepair.dir/core/greedy_single.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/core/greedy_single.cc.o.d"
  "/root/repo/src/core/lazy_targets.cc" "src/CMakeFiles/ftrepair.dir/core/lazy_targets.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/core/lazy_targets.cc.o.d"
  "/root/repo/src/core/multi_common.cc" "src/CMakeFiles/ftrepair.dir/core/multi_common.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/core/multi_common.cc.o.d"
  "/root/repo/src/core/repair_types.cc" "src/CMakeFiles/ftrepair.dir/core/repair_types.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/core/repair_types.cc.o.d"
  "/root/repo/src/core/repairer.cc" "src/CMakeFiles/ftrepair.dir/core/repairer.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/core/repairer.cc.o.d"
  "/root/repo/src/core/target_tree.cc" "src/CMakeFiles/ftrepair.dir/core/target_tree.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/core/target_tree.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/ftrepair.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/data/csv.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/CMakeFiles/ftrepair.dir/data/schema.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/data/schema.cc.o.d"
  "/root/repo/src/data/table.cc" "src/CMakeFiles/ftrepair.dir/data/table.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/data/table.cc.o.d"
  "/root/repo/src/data/value.cc" "src/CMakeFiles/ftrepair.dir/data/value.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/data/value.cc.o.d"
  "/root/repo/src/detect/detector.cc" "src/CMakeFiles/ftrepair.dir/detect/detector.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/detect/detector.cc.o.d"
  "/root/repo/src/detect/pattern.cc" "src/CMakeFiles/ftrepair.dir/detect/pattern.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/detect/pattern.cc.o.d"
  "/root/repo/src/detect/threshold.cc" "src/CMakeFiles/ftrepair.dir/detect/threshold.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/detect/threshold.cc.o.d"
  "/root/repo/src/detect/violation_graph.cc" "src/CMakeFiles/ftrepair.dir/detect/violation_graph.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/detect/violation_graph.cc.o.d"
  "/root/repo/src/discovery/fd_discovery.cc" "src/CMakeFiles/ftrepair.dir/discovery/fd_discovery.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/discovery/fd_discovery.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/ftrepair.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/profile.cc" "src/CMakeFiles/ftrepair.dir/eval/profile.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/eval/profile.cc.o.d"
  "/root/repo/src/eval/quality.cc" "src/CMakeFiles/ftrepair.dir/eval/quality.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/eval/quality.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/CMakeFiles/ftrepair.dir/eval/report.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/eval/report.cc.o.d"
  "/root/repo/src/gen/error_injector.cc" "src/CMakeFiles/ftrepair.dir/gen/error_injector.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/gen/error_injector.cc.o.d"
  "/root/repo/src/gen/hosp_gen.cc" "src/CMakeFiles/ftrepair.dir/gen/hosp_gen.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/gen/hosp_gen.cc.o.d"
  "/root/repo/src/gen/pools.cc" "src/CMakeFiles/ftrepair.dir/gen/pools.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/gen/pools.cc.o.d"
  "/root/repo/src/gen/tax_gen.cc" "src/CMakeFiles/ftrepair.dir/gen/tax_gen.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/gen/tax_gen.cc.o.d"
  "/root/repo/src/metric/distance.cc" "src/CMakeFiles/ftrepair.dir/metric/distance.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/metric/distance.cc.o.d"
  "/root/repo/src/metric/projection.cc" "src/CMakeFiles/ftrepair.dir/metric/projection.cc.o" "gcc" "src/CMakeFiles/ftrepair.dir/metric/projection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
