file(REMOVE_RECURSE
  "libftrepair.a"
)
