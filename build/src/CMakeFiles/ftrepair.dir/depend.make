# Empty dependencies file for ftrepair.
# This may be replaced when dependencies are built.
