file(REMOVE_RECURSE
  "CMakeFiles/fig06_quality_fds.dir/fig06_quality_fds.cc.o"
  "CMakeFiles/fig06_quality_fds.dir/fig06_quality_fds.cc.o.d"
  "fig06_quality_fds"
  "fig06_quality_fds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_quality_fds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
