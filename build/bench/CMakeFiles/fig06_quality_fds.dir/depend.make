# Empty dependencies file for fig06_quality_fds.
# This may be replaced when dependencies are built.
