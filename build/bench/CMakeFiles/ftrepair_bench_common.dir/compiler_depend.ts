# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ftrepair_bench_common.
