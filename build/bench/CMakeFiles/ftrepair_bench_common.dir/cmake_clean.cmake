file(REMOVE_RECURSE
  "CMakeFiles/ftrepair_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/ftrepair_bench_common.dir/bench_common.cc.o.d"
  "libftrepair_bench_common.a"
  "libftrepair_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftrepair_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
