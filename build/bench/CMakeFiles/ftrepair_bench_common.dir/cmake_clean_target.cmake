file(REMOVE_RECURSE
  "libftrepair_bench_common.a"
)
