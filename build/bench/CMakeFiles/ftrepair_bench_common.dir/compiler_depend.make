# Empty compiler generated dependencies file for ftrepair_bench_common.
# This may be replaced when dependencies are built.
