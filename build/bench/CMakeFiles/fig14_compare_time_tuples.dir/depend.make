# Empty dependencies file for fig14_compare_time_tuples.
# This may be replaced when dependencies are built.
