file(REMOVE_RECURSE
  "CMakeFiles/fig14_compare_time_tuples.dir/fig14_compare_time_tuples.cc.o"
  "CMakeFiles/fig14_compare_time_tuples.dir/fig14_compare_time_tuples.cc.o.d"
  "fig14_compare_time_tuples"
  "fig14_compare_time_tuples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_compare_time_tuples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
