# Empty compiler generated dependencies file for fig05_quality_tuples.
# This may be replaced when dependencies are built.
