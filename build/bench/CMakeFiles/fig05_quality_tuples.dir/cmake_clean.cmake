file(REMOVE_RECURSE
  "CMakeFiles/fig05_quality_tuples.dir/fig05_quality_tuples.cc.o"
  "CMakeFiles/fig05_quality_tuples.dir/fig05_quality_tuples.cc.o.d"
  "fig05_quality_tuples"
  "fig05_quality_tuples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_quality_tuples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
