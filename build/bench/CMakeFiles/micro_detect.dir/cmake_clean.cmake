file(REMOVE_RECURSE
  "CMakeFiles/micro_detect.dir/micro_detect.cc.o"
  "CMakeFiles/micro_detect.dir/micro_detect.cc.o.d"
  "micro_detect"
  "micro_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
