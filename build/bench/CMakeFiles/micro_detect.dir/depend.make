# Empty dependencies file for micro_detect.
# This may be replaced when dependencies are built.
