file(REMOVE_RECURSE
  "CMakeFiles/fig09_time_fds.dir/fig09_time_fds.cc.o"
  "CMakeFiles/fig09_time_fds.dir/fig09_time_fds.cc.o.d"
  "fig09_time_fds"
  "fig09_time_fds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_time_fds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
