# Empty dependencies file for fig09_time_fds.
# This may be replaced when dependencies are built.
