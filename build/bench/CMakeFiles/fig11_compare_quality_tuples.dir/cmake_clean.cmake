file(REMOVE_RECURSE
  "CMakeFiles/fig11_compare_quality_tuples.dir/fig11_compare_quality_tuples.cc.o"
  "CMakeFiles/fig11_compare_quality_tuples.dir/fig11_compare_quality_tuples.cc.o.d"
  "fig11_compare_quality_tuples"
  "fig11_compare_quality_tuples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_compare_quality_tuples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
