# Empty compiler generated dependencies file for fig11_compare_quality_tuples.
# This may be replaced when dependencies are built.
