file(REMOVE_RECURSE
  "CMakeFiles/micro_repair.dir/micro_repair.cc.o"
  "CMakeFiles/micro_repair.dir/micro_repair.cc.o.d"
  "micro_repair"
  "micro_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
