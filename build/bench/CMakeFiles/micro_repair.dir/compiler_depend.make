# Empty compiler generated dependencies file for micro_repair.
# This may be replaced when dependencies are built.
