file(REMOVE_RECURSE
  "CMakeFiles/fig15_compare_time_fds.dir/fig15_compare_time_fds.cc.o"
  "CMakeFiles/fig15_compare_time_fds.dir/fig15_compare_time_fds.cc.o.d"
  "fig15_compare_time_fds"
  "fig15_compare_time_fds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_compare_time_fds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
