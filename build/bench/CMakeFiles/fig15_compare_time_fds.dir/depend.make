# Empty dependencies file for fig15_compare_time_fds.
# This may be replaced when dependencies are built.
