file(REMOVE_RECURSE
  "CMakeFiles/fig07_quality_error_rate.dir/fig07_quality_error_rate.cc.o"
  "CMakeFiles/fig07_quality_error_rate.dir/fig07_quality_error_rate.cc.o.d"
  "fig07_quality_error_rate"
  "fig07_quality_error_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_quality_error_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
