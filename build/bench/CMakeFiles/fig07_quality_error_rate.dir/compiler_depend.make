# Empty compiler generated dependencies file for fig07_quality_error_rate.
# This may be replaced when dependencies are built.
