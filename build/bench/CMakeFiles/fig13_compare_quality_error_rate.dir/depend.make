# Empty dependencies file for fig13_compare_quality_error_rate.
# This may be replaced when dependencies are built.
