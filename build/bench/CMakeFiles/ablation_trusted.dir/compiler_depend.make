# Empty compiler generated dependencies file for ablation_trusted.
# This may be replaced when dependencies are built.
