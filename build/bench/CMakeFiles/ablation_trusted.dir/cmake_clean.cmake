file(REMOVE_RECURSE
  "CMakeFiles/ablation_trusted.dir/ablation_trusted.cc.o"
  "CMakeFiles/ablation_trusted.dir/ablation_trusted.cc.o.d"
  "ablation_trusted"
  "ablation_trusted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trusted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
