# Empty compiler generated dependencies file for fig12_compare_quality_fds.
# This may be replaced when dependencies are built.
