file(REMOVE_RECURSE
  "CMakeFiles/fig12_compare_quality_fds.dir/fig12_compare_quality_fds.cc.o"
  "CMakeFiles/fig12_compare_quality_fds.dir/fig12_compare_quality_fds.cc.o.d"
  "fig12_compare_quality_fds"
  "fig12_compare_quality_fds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_compare_quality_fds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
