# Empty dependencies file for fig08_time_tuples.
# This may be replaced when dependencies are built.
