file(REMOVE_RECURSE
  "CMakeFiles/fig08_time_tuples.dir/fig08_time_tuples.cc.o"
  "CMakeFiles/fig08_time_tuples.dir/fig08_time_tuples.cc.o.d"
  "fig08_time_tuples"
  "fig08_time_tuples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_time_tuples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
