# Empty compiler generated dependencies file for ablation_target_tree.
# This may be replaced when dependencies are built.
