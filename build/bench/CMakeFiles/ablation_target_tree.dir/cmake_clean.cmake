file(REMOVE_RECURSE
  "CMakeFiles/ablation_target_tree.dir/ablation_target_tree.cc.o"
  "CMakeFiles/ablation_target_tree.dir/ablation_target_tree.cc.o.d"
  "ablation_target_tree"
  "ablation_target_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_target_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
