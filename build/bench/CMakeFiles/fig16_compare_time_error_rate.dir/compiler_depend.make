# Empty compiler generated dependencies file for fig16_compare_time_error_rate.
# This may be replaced when dependencies are built.
