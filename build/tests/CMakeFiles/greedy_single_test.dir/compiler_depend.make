# Empty compiler generated dependencies file for greedy_single_test.
# This may be replaced when dependencies are built.
