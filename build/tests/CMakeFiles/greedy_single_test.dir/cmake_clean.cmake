file(REMOVE_RECURSE
  "CMakeFiles/greedy_single_test.dir/greedy_single_test.cc.o"
  "CMakeFiles/greedy_single_test.dir/greedy_single_test.cc.o.d"
  "greedy_single_test"
  "greedy_single_test.pdb"
  "greedy_single_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_single_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
