# Empty compiler generated dependencies file for expansion_single_test.
# This may be replaced when dependencies are built.
