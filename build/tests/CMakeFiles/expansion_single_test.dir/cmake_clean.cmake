file(REMOVE_RECURSE
  "CMakeFiles/expansion_single_test.dir/expansion_single_test.cc.o"
  "CMakeFiles/expansion_single_test.dir/expansion_single_test.cc.o.d"
  "expansion_single_test"
  "expansion_single_test.pdb"
  "expansion_single_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expansion_single_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
