file(REMOVE_RECURSE
  "CMakeFiles/fd_discovery_test.dir/fd_discovery_test.cc.o"
  "CMakeFiles/fd_discovery_test.dir/fd_discovery_test.cc.o.d"
  "fd_discovery_test"
  "fd_discovery_test.pdb"
  "fd_discovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_discovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
