file(REMOVE_RECURSE
  "CMakeFiles/target_tree_test.dir/target_tree_test.cc.o"
  "CMakeFiles/target_tree_test.dir/target_tree_test.cc.o.d"
  "target_tree_test"
  "target_tree_test.pdb"
  "target_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/target_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
