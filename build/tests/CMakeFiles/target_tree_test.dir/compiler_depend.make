# Empty compiler generated dependencies file for target_tree_test.
# This may be replaced when dependencies are built.
