file(REMOVE_RECURSE
  "CMakeFiles/trusted_rows_test.dir/trusted_rows_test.cc.o"
  "CMakeFiles/trusted_rows_test.dir/trusted_rows_test.cc.o.d"
  "trusted_rows_test"
  "trusted_rows_test.pdb"
  "trusted_rows_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trusted_rows_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
