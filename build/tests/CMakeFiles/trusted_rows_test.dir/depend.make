# Empty dependencies file for trusted_rows_test.
# This may be replaced when dependencies are built.
