file(REMOVE_RECURSE
  "CMakeFiles/lazy_targets_test.dir/lazy_targets_test.cc.o"
  "CMakeFiles/lazy_targets_test.dir/lazy_targets_test.cc.o.d"
  "lazy_targets_test"
  "lazy_targets_test.pdb"
  "lazy_targets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazy_targets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
