# Empty dependencies file for lazy_targets_test.
# This may be replaced when dependencies are built.
