# Empty dependencies file for violation_graph_test.
# This may be replaced when dependencies are built.
