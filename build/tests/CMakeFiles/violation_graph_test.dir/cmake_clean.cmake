file(REMOVE_RECURSE
  "CMakeFiles/violation_graph_test.dir/violation_graph_test.cc.o"
  "CMakeFiles/violation_graph_test.dir/violation_graph_test.cc.o.d"
  "violation_graph_test"
  "violation_graph_test.pdb"
  "violation_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/violation_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
