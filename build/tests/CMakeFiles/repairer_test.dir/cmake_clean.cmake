file(REMOVE_RECURSE
  "CMakeFiles/repairer_test.dir/repairer_test.cc.o"
  "CMakeFiles/repairer_test.dir/repairer_test.cc.o.d"
  "repairer_test"
  "repairer_test.pdb"
  "repairer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repairer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
