file(REMOVE_RECURSE
  "CMakeFiles/multi_fd_test.dir/multi_fd_test.cc.o"
  "CMakeFiles/multi_fd_test.dir/multi_fd_test.cc.o.d"
  "multi_fd_test"
  "multi_fd_test.pdb"
  "multi_fd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_fd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
