# Empty compiler generated dependencies file for multi_fd_test.
# This may be replaced when dependencies are built.
