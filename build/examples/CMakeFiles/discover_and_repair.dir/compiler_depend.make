# Empty compiler generated dependencies file for discover_and_repair.
# This may be replaced when dependencies are built.
