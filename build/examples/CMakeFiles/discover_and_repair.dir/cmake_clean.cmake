file(REMOVE_RECURSE
  "CMakeFiles/discover_and_repair.dir/discover_and_repair.cpp.o"
  "CMakeFiles/discover_and_repair.dir/discover_and_repair.cpp.o.d"
  "discover_and_repair"
  "discover_and_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discover_and_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
