file(REMOVE_RECURSE
  "CMakeFiles/hospital_cleaning.dir/hospital_cleaning.cpp.o"
  "CMakeFiles/hospital_cleaning.dir/hospital_cleaning.cpp.o.d"
  "hospital_cleaning"
  "hospital_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hospital_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
