# Empty dependencies file for hospital_cleaning.
# This may be replaced when dependencies are built.
