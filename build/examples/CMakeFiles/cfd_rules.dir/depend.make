# Empty dependencies file for cfd_rules.
# This may be replaced when dependencies are built.
