file(REMOVE_RECURSE
  "CMakeFiles/cfd_rules.dir/cfd_rules.cpp.o"
  "CMakeFiles/cfd_rules.dir/cfd_rules.cpp.o.d"
  "cfd_rules"
  "cfd_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfd_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
