file(REMOVE_RECURSE
  "CMakeFiles/ftrepair_cli.dir/ftrepair_cli.cc.o"
  "CMakeFiles/ftrepair_cli.dir/ftrepair_cli.cc.o.d"
  "ftrepair"
  "ftrepair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftrepair_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
