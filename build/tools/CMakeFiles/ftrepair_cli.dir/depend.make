# Empty dependencies file for ftrepair_cli.
# This may be replaced when dependencies are built.
